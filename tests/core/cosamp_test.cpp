#include "core/cosamp.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/omp.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

std::vector<Real> synthesize(const Matrix& g, const std::vector<Real>& alpha) {
  std::vector<Real> y(static_cast<std::size_t>(g.rows()), 0.0);
  for (Index m = 0; m < g.cols(); ++m) {
    if (alpha[static_cast<std::size_t>(m)] == 0.0) continue;
    axpy(alpha[static_cast<std::size_t>(m)], g.col(m), y);
  }
  return y;
}

TEST(Cosamp, ExactRecoveryAtTrueSparsity) {
  Rng rng(111);
  const Index k = 100, m = 400, p = 6;
  const Matrix g = monte_carlo_normal(k, m, rng);
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  std::set<Index> support;
  while (static_cast<Index>(support.size()) < p)
    support.insert(rng.uniform_index(m));
  for (Index s : support)
    alpha[static_cast<std::size_t>(s)] = rng.uniform() < 0.5 ? -1.0 : 1.0;
  const std::vector<Real> f = synthesize(g, alpha);

  const SolverPath path = CosampSolver().fit_at_sparsity(g, f, p);
  ASSERT_EQ(path.num_steps(), 1);
  const std::vector<Index> found = path.support(0);
  const std::set<Index> found_set(found.begin(), found.end());
  for (Index s : support) EXPECT_TRUE(found_set.count(s)) << "missing " << s;
  EXPECT_LT(path.residual_norms[0], 1e-8 * nrm2(f));

  const std::vector<Real> dense = path.dense_coefficients(0, m);
  for (Index j = 0; j < m; ++j)
    EXPECT_NEAR(dense[static_cast<std::size_t>(j)],
                alpha[static_cast<std::size_t>(j)], 1e-8);
}

TEST(Cosamp, PathResidualsTrendDownWithSparsity) {
  // Unlike OMP, CoSaMP supports are not nested across sparsity levels, so
  // strict monotonicity is not guaranteed — but the trend must be firmly
  // downward and any uptick small.
  Rng rng(112);
  const Matrix g = monte_carlo_normal(80, 150, rng);
  const std::vector<Real> f = rng.normal_vector(80);
  const SolverPath path = CosampSolver().fit_path(g, f, 10);
  ASSERT_GE(path.num_steps(), 5);
  for (Index t = 1; t < path.num_steps(); ++t)
    EXPECT_LE(path.residual_norms[static_cast<std::size_t>(t)],
              1.05 * path.residual_norms[static_cast<std::size_t>(t - 1)]);
  EXPECT_LT(path.residual_norms.back(), 0.9 * path.residual_norms.front());
}

TEST(Cosamp, SupportSizeMatchesRequestedSparsity) {
  Rng rng(113);
  const Matrix g = monte_carlo_normal(60, 100, rng);
  const std::vector<Real> f = rng.normal_vector(60);
  for (Index s : {1L, 3L, 8L}) {
    const SolverPath path = CosampSolver().fit_at_sparsity(g, f, s);
    EXPECT_EQ(static_cast<Index>(path.support(0).size()), s);
  }
}

TEST(Cosamp, CanUndoAWrongEarlyPick) {
  // Construct a decoy column highly correlated with the target mixture but
  // absent from the truth. OMP picks it first and keeps it forever; CoSaMP
  // prunes it once the true columns explain the data.
  Rng rng(114);
  const Index k = 120, m = 60;
  Matrix g = monte_carlo_normal(k, m, rng);
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  alpha[10] = 1.0;
  alpha[20] = 1.0;
  const std::vector<Real> f_clean = synthesize(g, alpha);
  // Decoy: column 0 := normalized (g10 + g20) + small noise.
  std::vector<Real> decoy = f_clean;
  for (Real& v : decoy) v /= nrm2(f_clean) / std::sqrt(static_cast<Real>(k));
  for (Real& v : decoy) v += 0.15 * rng.normal();
  g.set_col(0, decoy);

  const SolverPath omp = OmpSolver().fit_path(g, f_clean, 2);
  EXPECT_EQ(omp.selection_order[0], 0);  // OMP falls for the decoy...
  const std::set<Index> omp_sup(omp.selection_order.begin(),
                                omp.selection_order.end());
  EXPECT_TRUE(omp_sup.count(0));  // ...and cannot remove it at s=2

  const SolverPath cosamp = CosampSolver().fit_at_sparsity(g, f_clean, 2);
  const std::vector<Index> sup = cosamp.support(0);
  EXPECT_EQ(sup, (std::vector<Index>{10, 20}));
  EXPECT_LT(cosamp.residual_norms[0], 1e-8);
}

TEST(Cosamp, MatchesOmpOnEasyProblems) {
  // On well-conditioned designs at the true sparsity both land on the same
  // support.
  Rng rng(115);
  const Index k = 90, m = 200, p = 5;
  const Matrix g = monte_carlo_normal(k, m, rng);
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  for (Index i = 0; i < p; ++i)
    alpha[static_cast<std::size_t>(rng.uniform_index(m))] = 2.0;
  const std::vector<Real> f = synthesize(g, alpha);
  const SolverPath omp = OmpSolver().fit_path(g, f, p);
  const SolverPath cosamp = CosampSolver().fit_at_sparsity(g, f, p);
  const std::set<Index> omp_sup(omp.selection_order.begin(),
                                omp.selection_order.end());
  const std::vector<Index> cos_support = cosamp.support(0);
  const std::set<Index> cos_sup(cos_support.begin(), cos_support.end());
  EXPECT_EQ(omp_sup, cos_sup);
}

TEST(Cosamp, SparsityCappedByHalfSamples) {
  Rng rng(116);
  const Matrix g = monte_carlo_normal(20, 50, rng);
  const std::vector<Real> f = rng.normal_vector(20);
  const SolverPath path = CosampSolver().fit_at_sparsity(g, f, 40);
  EXPECT_LE(path.support(0).size(), 10u);  // k/2
}

TEST(Cosamp, ZeroTargetGracefullyEmpty) {
  Rng rng(117);
  const Matrix g = monte_carlo_normal(30, 20, rng);
  const std::vector<Real> f(30, 0.0);
  const SolverPath path = CosampSolver().fit_at_sparsity(g, f, 3);
  EXPECT_LT(path.residual_norms[0], 1e-12);
}

}  // namespace
}  // namespace rsm
