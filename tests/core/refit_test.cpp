#include <cmath>

#include <gtest/gtest.h>

#include "core/lar.hpp"
#include "core/omp.hpp"
#include "core/pipeline.hpp"
#include "core/synthetic.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

struct RefitFixture {
  std::shared_ptr<const BasisDictionary> dict;
  Matrix train, test;
  std::vector<Real> f_train, f_test;

  explicit RefitFixture(std::uint64_t seed) {
    Rng rng(seed);
    const Index n = 12;
    dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
    SyntheticOptions opt;
    opt.num_active = 6;
    opt.noise_stddev = 0.02;
    const SyntheticSparseFunction fn(dict, opt, rng);
    train = monte_carlo_normal(90, n, rng);
    test = monte_carlo_normal(1000, n, rng);
    f_train = fn.observe(train, rng);
    f_test = fn.observe(test, rng);
  }
};

TEST(RefitModel, OmpModelIsFixedPoint) {
  // OMP already solves LS on its support: refitting changes nothing.
  const RefitFixture fx(31);
  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 10;
  opt.skip_cross_validation = true;
  const SparseModel model = build_model(fx.dict, fx.train, fx.f_train, opt).model;
  const SparseModel refit = refit_model(model, fx.train, fx.f_train);
  ASSERT_EQ(refit.num_terms(), model.num_terms());
  for (Index i = 0; i < model.num_terms(); ++i) {
    EXPECT_EQ(refit.terms()[static_cast<std::size_t>(i)].basis_index,
              model.terms()[static_cast<std::size_t>(i)].basis_index);
    EXPECT_NEAR(refit.terms()[static_cast<std::size_t>(i)].coefficient,
                model.terms()[static_cast<std::size_t>(i)].coefficient, 1e-8);
  }
}

TEST(RefitModel, DebiasesLarShrinkage) {
  // Mid-path LAR coefficients are shrunk; the LS refit must not hurt and
  // typically helps on an independent testing set.
  const RefitFixture fx(32);
  BuildOptions opt;
  opt.method = Method::kLar;
  opt.max_lambda = 8;  // stop early: strong shrinkage
  opt.skip_cross_validation = true;
  const SparseModel lar = build_model(fx.dict, fx.train, fx.f_train, opt).model;
  const SparseModel debiased = refit_model(lar, fx.train, fx.f_train);

  const Real err_lar = validate_model(lar, fx.test, fx.f_test);
  const Real err_debiased = validate_model(debiased, fx.test, fx.f_test);
  EXPECT_LT(err_debiased, err_lar);
  // And the L1 norm grew (shrinkage removed).
  Real l1_lar = 0, l1_deb = 0;
  for (const ModelTerm& t : lar.terms()) l1_lar += std::abs(t.coefficient);
  for (const ModelTerm& t : debiased.terms())
    l1_deb += std::abs(t.coefficient);
  EXPECT_GT(l1_deb, l1_lar);
}

TEST(RefitModel, SharesDictionary) {
  const RefitFixture fx(33);
  BuildOptions opt;
  opt.max_lambda = 6;
  opt.skip_cross_validation = true;
  const SparseModel model = build_model(fx.dict, fx.train, fx.f_train, opt).model;
  const SparseModel refit = refit_model(model, fx.train, fx.f_train);
  EXPECT_EQ(refit.dictionary_ptr().get(), model.dictionary_ptr().get());
}

TEST(RefitModel, EmptyModelPassesThrough) {
  const RefitFixture fx(34);
  const SparseModel empty(fx.dict, {});
  const SparseModel refit = refit_model(empty, fx.train, fx.f_train);
  EXPECT_EQ(refit.num_terms(), 0);
}

TEST(RefitModel, TooFewSamplesThrows) {
  const RefitFixture fx(35);
  BuildOptions opt;
  opt.max_lambda = 10;
  opt.skip_cross_validation = true;
  const SparseModel model = build_model(fx.dict, fx.train, fx.f_train, opt).model;
  Matrix tiny(2, fx.dict->num_variables());
  const std::vector<Real> f_tiny(2, 1.0);
  EXPECT_THROW((void)refit_model(model, tiny, f_tiny), Error);
}

}  // namespace
}  // namespace rsm
