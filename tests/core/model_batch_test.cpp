// Bit-identity contract of the batched evaluation engine (and of the
// memoized scalar path it shares a plan with): predict_batch and
// gradient_batch must reproduce predict/gradient bit for bit, and predict
// itself must reproduce the pre-memoization reference arithmetic — a
// term-by-term sum of coefficient * per-factor Hermite products. The
// serving layer advertises "same model, same bits" across the registry
// round trip and the scalar/batched split; these tests are that claim.
#include "core/model.hpp"

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "basis/hermite.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

bool same_bits(Real a, Real b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// The pre-plan reference implementation of predict: evaluate each term's
/// basis function factor by factor in stored order, starting the product at
/// 1, and accumulate terms in declaration order. Any change to predict()
/// must keep matching this to the last bit.
Real reference_predict(const SparseModel& model, std::span<const Real> x) {
  Real sum = 0;
  for (const ModelTerm& term : model.terms()) {
    Real product = 1;
    for (const IndexTerm& factor :
         model.dictionary().index(term.basis_index).terms())
      product *= hermite_normalized(
          factor.order, x[static_cast<std::size_t>(factor.variable)]);
    sum += term.coefficient * product;
  }
  return sum;
}

/// A model touching the interesting plan shapes: the constant (no factors),
/// single-factor linear terms, repeated variables at different orders, and
/// a multi-factor cross term.
SparseModel mixed_model(Index n) {
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  std::vector<ModelTerm> terms;
  Rng rng(99);
  for (Index m = 0; m < dict->size(); m += 3)
    terms.push_back({m, rng.normal() * 0.7});
  return SparseModel(dict, std::move(terms));
}

TEST(ModelBatch, MemoizedPredictMatchesReferenceBitwise) {
  const SparseModel model = mixed_model(6);
  Rng rng(17);
  const Matrix samples = monte_carlo_normal(200, 6, rng);
  for (Index r = 0; r < samples.rows(); ++r) {
    const Real got = model.predict(samples.row(r));
    const Real want = reference_predict(model, samples.row(r));
    ASSERT_TRUE(same_bits(got, want))
        << "row " << r << ": " << got << " vs " << want;
  }
}

TEST(ModelBatch, PredictBatchBitIdenticalToScalar) {
  const SparseModel model = mixed_model(5);
  Rng rng(23);
  // Row counts around the internal block size (64) exercise full blocks,
  // partial tails, and the single-row degenerate case.
  for (const Index rows : {1, 7, 63, 64, 65, 130, 256}) {
    const Matrix samples = monte_carlo_normal(rows, 5, rng);
    std::vector<Real> out(static_cast<std::size_t>(rows));
    model.predict_batch(samples, out);
    for (Index r = 0; r < rows; ++r)
      ASSERT_TRUE(
          same_bits(out[static_cast<std::size_t>(r)], model.predict(samples.row(r))))
          << "rows=" << rows << " r=" << r;
  }
}

TEST(ModelBatch, RawSpanOverloadMatchesMatrixOverload) {
  const SparseModel model = mixed_model(4);
  Rng rng(31);
  const Matrix samples = monte_carlo_normal(90, 4, rng);
  std::vector<Real> via_matrix(90);
  std::vector<Real> via_span(90);
  model.predict_batch(samples, via_matrix);
  model.predict_batch(
      std::span<const Real>(samples.data(),
                            static_cast<std::size_t>(samples.rows()) *
                                static_cast<std::size_t>(samples.cols())),
      samples.rows(), via_span);
  for (std::size_t r = 0; r < 90; ++r)
    ASSERT_TRUE(same_bits(via_matrix[r], via_span[r])) << "r=" << r;
  // Sub-range evaluation (what the server's chunked dispatch does) must
  // agree with evaluating the corresponding rows directly.
  std::vector<Real> tail(30);
  model.predict_batch(
      std::span<const Real>(samples.data() + 60 * samples.cols(),
                            static_cast<std::size_t>(30 * samples.cols())),
      30, tail);
  for (std::size_t r = 0; r < 30; ++r)
    ASSERT_TRUE(same_bits(tail[r], via_matrix[r + 60])) << "r=" << r;
}

TEST(ModelBatch, GradientBatchBitIdenticalToScalar) {
  const SparseModel model = mixed_model(5);
  Rng rng(47);
  for (const Index rows : {1, 64, 65, 100}) {
    const Matrix samples = monte_carlo_normal(rows, 5, rng);
    const Matrix grads = model.gradient_batch(samples);
    ASSERT_EQ(grads.rows(), rows);
    ASSERT_EQ(grads.cols(), 5);
    for (Index r = 0; r < rows; ++r) {
      const std::vector<Real> scalar = model.gradient(samples.row(r));
      for (Index j = 0; j < 5; ++j)
        ASSERT_TRUE(same_bits(grads(r, j), scalar[static_cast<std::size_t>(j)]))
            << "rows=" << rows << " r=" << r << " j=" << j;
    }
  }
}

TEST(ModelBatch, PredictAllStillMatchesScalar) {
  const SparseModel model = mixed_model(3);
  Rng rng(53);
  const Matrix samples = monte_carlo_normal(70, 3, rng);
  const std::vector<Real> all = model.predict_all(samples);
  for (Index r = 0; r < 70; ++r)
    ASSERT_TRUE(same_bits(all[static_cast<std::size_t>(r)],
                          model.predict(samples.row(r))));
}

TEST(ModelBatch, EmptyModelAndEmptyBatch) {
  const SparseModel empty;
  EXPECT_EQ(empty.predict(std::vector<Real>{1.0, 2.0}), 0.0);

  const SparseModel model = mixed_model(3);
  std::vector<Real> out;
  model.predict_batch(Matrix(0, 3), out);  // no rows: no output, no crash

  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(3));
  const SparseModel no_terms(dict, {});
  Rng rng(5);
  const Matrix samples = monte_carlo_normal(10, 3, rng);
  std::vector<Real> zeros(10, 42.0);
  no_terms.predict_batch(samples, zeros);
  for (const Real v : zeros) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace rsm
