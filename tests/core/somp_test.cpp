#include "core/somp.hpp"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/omp.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

/// Builds R responses sharing a support over random columns.
struct JointProblem {
  Matrix g;
  Matrix responses;
  std::vector<Index> support;
};

JointProblem make_joint(Index k, Index m, Index p, Index num_responses,
                        std::uint64_t seed, Real noise = 0.0) {
  Rng rng(seed);
  JointProblem prob;
  prob.g = monte_carlo_normal(k, m, rng);
  std::set<Index> chosen;
  while (static_cast<Index>(chosen.size()) < p)
    chosen.insert(rng.uniform_index(m));
  prob.support.assign(chosen.begin(), chosen.end());
  prob.responses = Matrix(k, num_responses);
  for (Index r = 0; r < num_responses; ++r) {
    std::vector<Real> y(static_cast<std::size_t>(k), 0.0);
    for (Index s : prob.support)
      axpy(rng.normal(0, 1.0) + (rng.uniform() < 0.5 ? -1.5 : 1.5),
           prob.g.col(s), y);
    for (Real& v : y) v += noise * rng.normal();
    prob.responses.set_col(r, y);
  }
  return prob;
}

TEST(Somp, RecoversSharedSupport) {
  const JointProblem prob = make_joint(80, 200, 6, 4, 801);
  const SompResult result = SompSolver().fit(prob.g, prob.responses, 6);
  const std::set<Index> found(result.support.begin(), result.support.end());
  for (Index s : prob.support) EXPECT_TRUE(found.count(s)) << "missing " << s;
  for (Real rn : result.residual_norms) EXPECT_LT(rn, 1e-8);
}

TEST(Somp, CoefficientsMatchPerResponseLsOnSupport) {
  const JointProblem prob = make_joint(60, 100, 4, 3, 802, 0.05);
  const SompResult result = SompSolver().fit(prob.g, prob.responses, 4);
  ASSERT_EQ(result.support.size(), 4u);
  // Per response, coefficients must equal OMP restricted to the same
  // support — verify via the normal equations residual orthogonality.
  for (Index r = 0; r < 3; ++r) {
    std::vector<Real> residual = prob.responses.col(r);
    for (std::size_t s = 0; s < result.support.size(); ++s)
      axpy(-result.coefficients[static_cast<std::size_t>(r)][s],
           prob.g.col(result.support[s]), residual);
    for (Index s : result.support)
      EXPECT_NEAR(dot(prob.g.col(s), residual), 0.0, 1e-8);
  }
}

TEST(Somp, JointSelectionBeatsWeakSingleResponse) {
  // A column that is moderately present in EVERY response outranks one that
  // is strong in a single response — the point of joint scoring.
  Rng rng(803);
  const Index k = 150, m = 50;
  Matrix g = monte_carlo_normal(k, m, rng);
  const Index shared_col = 7, solo_col = 33;
  Matrix responses(k, 4);
  for (Index r = 0; r < 4; ++r) {
    std::vector<Real> y(static_cast<std::size_t>(k), 0.0);
    axpy(1.0, g.col(shared_col), y);  // moderate, everywhere
    if (r == 0) axpy(1.6, g.col(solo_col), y);  // strong, one response
    for (Real& v : y) v += 0.05 * rng.normal();
    responses.set_col(r, y);
  }
  const SompResult result = SompSolver().fit(g, responses, 1);
  ASSERT_EQ(result.support.size(), 1u);
  EXPECT_EQ(result.support[0], shared_col);
}

TEST(Somp, SingleResponseReducesToOmp) {
  Rng rng(804);
  const Index k = 70, m = 120;
  const Matrix g = monte_carlo_normal(k, m, rng);
  Matrix responses(k, 1);
  responses.set_col(0, rng.normal_vector(k));
  const std::vector<Real> f = responses.col(0);

  const SompResult somp = SompSolver().fit(g, responses, 8);
  const SolverPath omp = OmpSolver().fit_path(g, f, 8);
  ASSERT_EQ(somp.support.size(), omp.selection_order.size());
  for (std::size_t i = 0; i < somp.support.size(); ++i)
    EXPECT_EQ(somp.support[i], omp.selection_order[i]) << "step " << i;
}

TEST(Somp, ScoreToleranceStopsEarly) {
  const JointProblem prob = make_joint(80, 150, 3, 2, 805);
  SompSolver::Options opt;
  opt.score_tolerance = 1e-6;  // once the true support is absorbed, scores
                               // collapse and the solver stops
  const SompResult result = SompSolver(opt).fit(prob.g, prob.responses, 50);
  EXPECT_LE(result.support.size(), 6u);
  EXPECT_GE(result.support.size(), 3u);
}

TEST(Somp, ShapeValidation) {
  Rng rng(806);
  const Matrix g = monte_carlo_normal(20, 10, rng);
  Matrix bad(19, 2);  // row mismatch
  EXPECT_THROW(SompSolver().fit(g, bad, 3), Error);
}

}  // namespace
}  // namespace rsm
