// Belt to rsm-lint's suspenders (rule error-code-coverage): every ErrorCode
// has a distinct, stable report name, and every code round-trips through
// the campaign JSON report — so a taxonomy extension that forgets a mapping
// fails here even on machines that never run the linter.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "obs/json.hpp"
#include "util/errors.hpp"

namespace rsm {
namespace {

TEST(ErrorCodeExhaustiveness, EveryCodeHasADistinctStableName) {
  std::set<std::string> names;
  for (int c = 0; c < kNumErrorCodes; ++c) {
    const std::string name = error_code_name(static_cast<ErrorCode>(c));
    EXPECT_NE(name, "?") << "ErrorCode " << c
                         << " missing from error_code_name()";
    EXPECT_FALSE(name.empty());
    // Report names are dashed-lowercase (docs/observability.md).
    for (const char ch : name)
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '-') << name;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumErrorCodes))
      << "two ErrorCodes share a report name";
  // Out-of-range values (a corrupted checkpoint, a stale report) must map
  // to the sentinel rather than crash.
  EXPECT_STREQ(error_code_name(static_cast<ErrorCode>(kNumErrorCodes)), "?");
}

TEST(ErrorCodeExhaustiveness, ClassifyErrorCoversTheTaxonomy) {
  EXPECT_EQ(classify_error(SingularMatrixError("x")),
            ErrorCode::kSingularMatrix);
  EXPECT_EQ(classify_error(ConvergenceError("x", 3)),
            ErrorCode::kNoConvergence);
  EXPECT_EQ(classify_error(NumericalDomainError("x")),
            ErrorCode::kNumericalDomain);
  EXPECT_EQ(classify_error(DeadlineExceededError("x")),
            ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(classify_error(IoError("x")), ErrorCode::kIoError);
  EXPECT_EQ(classify_error(ProtocolError("x")), ErrorCode::kProtocolError);
  EXPECT_EQ(classify_error(VersionMismatchError("x")),
            ErrorCode::kVersionMismatch);
  EXPECT_EQ(classify_error(OverloadedError("x")), ErrorCode::kOverloaded);
  EXPECT_EQ(classify_error(ConnectionTimeoutError("x")),
            ErrorCode::kConnectionTimeout);
  EXPECT_EQ(classify_error(Error("plain")), ErrorCode::kUnclassified);
  EXPECT_EQ(classify_error(std::runtime_error("foreign")),
            ErrorCode::kUnclassified);
}

TEST(ErrorCodeRoundTrip, EveryCodeSurvivesTheCampaignJsonReport) {
  // Give each code a distinct histogram count, push one quarantined sample
  // per failure code, and verify the JSON carries every (name, count) pair
  // back out unchanged.
  CampaignReport report;
  report.attempted = 100;
  report.succeeded = 90;
  for (int c = 0; c < kNumErrorCodes; ++c) {
    const auto code = static_cast<ErrorCode>(c);
    report.error_histogram[static_cast<std::size_t>(c)] = 10 + c;
    if (code != ErrorCode::kOk) {
      report.quarantined.push_back(
          {c, code, std::string("reason-") + error_code_name(code)});
    }
  }

  const obs::JsonValue doc = report.to_json();
  const obs::JsonValue* histogram = doc.find("failed_attempts_by_code");
  ASSERT_NE(histogram, nullptr);
  ASSERT_TRUE(histogram->is_object());
  EXPECT_EQ(histogram->size(), static_cast<std::size_t>(kNumErrorCodes))
      << "histogram must carry every code, including zero-count ones";
  for (int c = 0; c < kNumErrorCodes; ++c) {
    const char* name = error_code_name(static_cast<ErrorCode>(c));
    const obs::JsonValue* count = histogram->find(name);
    ASSERT_NE(count, nullptr) << "code " << name << " absent from report";
    EXPECT_EQ(count->as_int(), 10 + c) << name;
  }

  const obs::JsonValue* quarantined = doc.find("quarantined");
  ASSERT_NE(quarantined, nullptr);
  ASSERT_TRUE(quarantined->is_array());
  ASSERT_EQ(quarantined->size(),
            static_cast<std::size_t>(kNumErrorCodes - 1));
  std::set<std::string> seen;
  for (const obs::JsonValue& entry : quarantined->items()) {
    const obs::JsonValue* code_name = entry.find("code");
    ASSERT_NE(code_name, nullptr);
    seen.insert(code_name->as_string());
  }
  for (int c = 1; c < kNumErrorCodes; ++c) {
    EXPECT_TRUE(seen.count(error_code_name(static_cast<ErrorCode>(c))))
        << "quarantine entry for code " << c << " lost its name";
  }
}

}  // namespace
}  // namespace rsm
