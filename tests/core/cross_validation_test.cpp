#include "core/cross_validation.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/omp.hpp"
#include "core/star.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/errors.hpp"

namespace rsm {
namespace {

std::vector<Real> synthesize(const Matrix& g, const std::vector<Real>& alpha) {
  std::vector<Real> y(static_cast<std::size_t>(g.rows()), 0.0);
  for (Index m = 0; m < g.cols(); ++m) {
    if (alpha[static_cast<std::size_t>(m)] == 0.0) continue;
    axpy(alpha[static_cast<std::size_t>(m)], g.col(m), y);
  }
  return y;
}

/// Builds a noisy sparse problem with known sparsity p.
struct SparseProblem {
  Matrix g;
  std::vector<Real> f;
  Index true_sparsity;
};

SparseProblem make_problem(Index k, Index m, Index p, Real noise,
                           std::uint64_t seed) {
  Rng rng(seed);
  SparseProblem prob;
  prob.g = monte_carlo_normal(k, m, rng);
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  for (Index i = 0; i < p; ++i)
    alpha[static_cast<std::size_t>(rng.uniform_index(m))] =
        (rng.uniform() < 0.5 ? -1.0 : 1.0) * (1.0 + rng.uniform());
  prob.f = synthesize(prob.g, alpha);
  for (Real& v : prob.f) v += noise * rng.normal();
  prob.true_sparsity = p;
  return prob;
}

TEST(CrossValidation, PicksLambdaNearTrueSparsity) {
  const SparseProblem prob = make_problem(120, 300, 6, 0.05, 501);
  const OmpSolver solver;
  const CrossValidationResult cv =
      CrossValidator().run(solver, prob.g, prob.f, 40);
  EXPECT_GE(cv.best_lambda, prob.true_sparsity - 1);
  EXPECT_LE(cv.best_lambda, prob.true_sparsity + 6);
}

TEST(CrossValidation, ErrorCurveHasOverfittingTail) {
  // eps(lambda) decreases to a minimum then rises (or flattens) as lambda
  // overshoots the true sparsity — the Section IV-C picture. With noise,
  // the error at lambda_max must exceed the minimum.
  const SparseProblem prob = make_problem(100, 250, 5, 0.2, 502);
  const CrossValidationResult cv =
      CrossValidator().run(OmpSolver(), prob.g, prob.f, 60);
  const Real tail = cv.error_curve.back();
  EXPECT_GT(tail, cv.best_error * 1.05);
}

TEST(CrossValidation, BestErrorConsistentWithCurve) {
  const SparseProblem prob = make_problem(80, 150, 4, 0.1, 503);
  const CrossValidationResult cv =
      CrossValidator().run(OmpSolver(), prob.g, prob.f, 30);
  ASSERT_GE(cv.best_lambda, 1);
  ASSERT_LE(static_cast<std::size_t>(cv.best_lambda), cv.error_curve.size());
  EXPECT_EQ(cv.error_curve[static_cast<std::size_t>(cv.best_lambda - 1)],
            cv.best_error);
  for (Real e : cv.error_curve) EXPECT_GE(e, cv.best_error);
}

TEST(CrossValidation, FoldCurvesPopulated) {
  const SparseProblem prob = make_problem(60, 100, 3, 0.1, 504);
  CrossValidator::Options opt;
  opt.num_folds = 5;
  const CrossValidationResult cv =
      CrossValidator(opt).run(OmpSolver(), prob.g, prob.f, 20);
  EXPECT_EQ(cv.fold_curves.size(), 5u);
  for (const auto& curve : cv.fold_curves) EXPECT_FALSE(curve.empty());
}

TEST(CrossValidation, DeterministicGivenSeed) {
  const SparseProblem prob = make_problem(60, 100, 3, 0.1, 505);
  const CrossValidationResult a =
      CrossValidator().run(OmpSolver(), prob.g, prob.f, 15);
  const CrossValidationResult b =
      CrossValidator().run(OmpSolver(), prob.g, prob.f, 15);
  EXPECT_EQ(a.best_lambda, b.best_lambda);
  EXPECT_EQ(a.error_curve, b.error_curve);
}

TEST(CrossValidation, DifferentSeedsShuffleFolds) {
  const SparseProblem prob = make_problem(60, 100, 3, 0.3, 506);
  CrossValidator::Options o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  const CrossValidationResult a =
      CrossValidator(o1).run(OmpSolver(), prob.g, prob.f, 15);
  const CrossValidationResult b =
      CrossValidator(o2).run(OmpSolver(), prob.g, prob.f, 15);
  EXPECT_NE(a.error_curve, b.error_curve);
}

TEST(CrossValidation, WorksWithStar) {
  const SparseProblem prob = make_problem(80, 120, 4, 0.05, 507);
  const CrossValidationResult cv =
      CrossValidator().run(StarSolver(), prob.g, prob.f, 30);
  EXPECT_GE(cv.best_lambda, 1);
  EXPECT_LT(cv.best_error, 1.0);
}

TEST(CrossValidation, TooFewSamplesThrows) {
  const SparseProblem prob = make_problem(6, 20, 2, 0.0, 508);
  EXPECT_THROW(CrossValidator().run(OmpSolver(), prob.g, prob.f, 5), Error);
}

TEST(CrossValidation, FoldCountValidation) {
  CrossValidator::Options opt;
  opt.num_folds = 1;
  EXPECT_THROW(CrossValidator{opt}, Error);
}

TEST(CrossValidation, CleanRunReportsNoSkippedFolds) {
  const SparseProblem prob = make_problem(60, 100, 3, 0.1, 510);
  const CrossValidationResult cv =
      CrossValidator().run(OmpSolver(), prob.g, prob.f, 15);
  EXPECT_EQ(cv.skipped_folds, 0);
}

/// Delegates to OMP but throws on chosen invocations — a stand-in for a
/// degenerate training block that breaks the path fit.
class FlakySolver : public PathSolver {
 public:
  explicit FlakySolver(int fail_first_n) : fail_first_n_(fail_first_n) {}

  [[nodiscard]] SolverPath fit_path(const Matrix& g, std::span<const Real> f,
                                    Index max_steps) const override {
    if (calls_++ < fail_first_n_)
      throw SingularMatrixError("degenerate fold (injected)");
    return inner_.fit_path(g, f, max_steps);
  }

  [[nodiscard]] const char* name() const override { return "flaky"; }

 private:
  OmpSolver inner_;
  int fail_first_n_;
  mutable int calls_ = 0;
};

TEST(CrossValidation, DegenerateFoldIsSkippedNotFatal) {
  const SparseProblem prob = make_problem(80, 120, 4, 0.1, 511);
  const FlakySolver solver(1);  // first fold's fit throws
  const CrossValidationResult cv =
      CrossValidator().run(solver, prob.g, prob.f, 20);
  EXPECT_EQ(cv.skipped_folds, 1);
  ASSERT_EQ(cv.fold_curves.size(), 4u);
  int empty_curves = 0;
  for (const auto& curve : cv.fold_curves)
    if (curve.empty()) ++empty_curves;
  EXPECT_EQ(empty_curves, 1);
  // The surviving folds still produce a usable averaged curve.
  EXPECT_GE(cv.best_lambda, 1);
  EXPECT_TRUE(std::isfinite(cv.best_error));
}

TEST(CrossValidation, AllFoldsDegenerateThrows) {
  const SparseProblem prob = make_problem(80, 120, 4, 0.1, 512);
  const FlakySolver solver(4);  // every fold throws
  EXPECT_THROW((void)CrossValidator().run(solver, prob.g, prob.f, 20), Error);
}

class CvFoldSweep : public ::testing::TestWithParam<int> {};

TEST_P(CvFoldSweep, ReasonableLambdaAcrossQ) {
  const int q = GetParam();
  const SparseProblem prob = make_problem(120, 200, 5, 0.1, 509);
  CrossValidator::Options opt;
  opt.num_folds = q;
  const CrossValidationResult cv =
      CrossValidator(opt).run(OmpSolver(), prob.g, prob.f, 30);
  EXPECT_GE(cv.best_lambda, 3);
  EXPECT_LE(cv.best_lambda, 15);
}

INSTANTIATE_TEST_SUITE_P(FoldCounts, CvFoldSweep, ::testing::Values(2, 4, 10));

}  // namespace
}  // namespace rsm
