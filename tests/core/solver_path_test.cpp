#include "core/solver_path.hpp"

#include <gtest/gtest.h>

namespace rsm {
namespace {

SolverPath prefix_path() {
  SolverPath p;
  p.selection_order = {4, 1, 7};
  p.coefficients = {{1.0}, {0.9, 2.0}, {0.8, 1.9, -3.0}};
  p.residual_norms = {5.0, 2.0, 0.5};
  return p;
}

TEST(SolverPath, PrefixSupports) {
  const SolverPath p = prefix_path();
  EXPECT_EQ(p.num_steps(), 3);
  EXPECT_EQ(p.support(0), (std::vector<Index>{4}));
  EXPECT_EQ(p.support(1), (std::vector<Index>{4, 1}));
  EXPECT_EQ(p.support(2), (std::vector<Index>{4, 1, 7}));
}

TEST(SolverPath, ExplicitActiveSetsOverridePrefix) {
  SolverPath p = prefix_path();
  p.active_sets = {{4}, {4, 1}, {1, 7}};  // drop event at step 2
  EXPECT_EQ(p.support(2), (std::vector<Index>{1, 7}));
}

TEST(SolverPath, DenseCoefficientsScatter) {
  const SolverPath p = prefix_path();
  const std::vector<Real> dense = p.dense_coefficients(2, 10);
  ASSERT_EQ(dense.size(), 10u);
  EXPECT_EQ(dense[4], 0.8);
  EXPECT_EQ(dense[1], 1.9);
  EXPECT_EQ(dense[7], -3.0);
  EXPECT_EQ(dense[0], 0.0);
}

TEST(SolverPath, DenseCoefficientsAccumulateDuplicates) {
  SolverPath p;
  p.selection_order = {2, 2};
  p.coefficients = {{1.0}, {1.0, 0.5}};
  const std::vector<Real> dense = p.dense_coefficients(1, 4);
  EXPECT_EQ(dense[2], 1.5);
}

TEST(SolverPath, OutOfRangeStepThrows) {
  const SolverPath p = prefix_path();
  EXPECT_THROW((void)p.support(3), Error);
  EXPECT_THROW((void)p.support(-1), Error);
}

TEST(SolverPath, IndexOutsideColumnsThrows) {
  const SolverPath p = prefix_path();
  EXPECT_THROW((void)p.dense_coefficients(2, 5), Error);  // index 7 >= 5
}

TEST(SolverPath, MismatchedActiveSetSizeThrows) {
  SolverPath p = prefix_path();
  p.active_sets = {{4}};  // wrong length vs 3 steps
  EXPECT_THROW((void)p.support(0), Error);
}

}  // namespace
}  // namespace rsm
