#include "core/worst_case.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

std::shared_ptr<const BasisDictionary> dict(Index n) {
  return std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
}

TEST(Gradient, MatchesFiniteDifferences) {
  Rng rng(61);
  const SparseModel model(dict(4), {{0, 1.0}, {1, 0.7}, {5, -0.4},
                                    {6, 0.9}, {9, 0.3}});
  const Real h = 1e-6;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Real> x = rng.normal_vector(4);
    const std::vector<Real> grad = model.gradient(x);
    for (Index v = 0; v < 4; ++v) {
      std::vector<Real> xp = x, xm = x;
      xp[static_cast<std::size_t>(v)] += h;
      xm[static_cast<std::size_t>(v)] -= h;
      const Real fd = (model.predict(xp) - model.predict(xm)) / (2 * h);
      EXPECT_NEAR(grad[static_cast<std::size_t>(v)], fd, 1e-5)
          << "var " << v;
    }
  }
}

TEST(Gradient, ZeroForConstantModel) {
  const SparseModel model(dict(3), {{0, 5.0}});
  const std::vector<Real> g = model.gradient(std::vector<Real>{1, 2, 3});
  for (Real v : g) EXPECT_EQ(v, 0.0);
}

TEST(WorstCase, LinearModelHasClosedFormCorner) {
  // f = 2 y0 - y1: max over ||y|| <= 3 is 3*sqrt(5) at 3*(2,-1)/sqrt(5).
  const SparseModel model(dict(3), {{1, 2.0}, {2, -1.0}});
  WorstCaseOptions opt;
  opt.radius = 3.0;
  const WorstCaseResult r = find_worst_case(model, opt);
  EXPECT_NEAR(r.value, 3.0 * std::sqrt(5.0), 1e-6);
  EXPECT_NEAR(r.sigma_distance, 3.0, 1e-9);
  EXPECT_NEAR(r.corner[0], 6.0 / std::sqrt(5.0), 1e-4);
  EXPECT_NEAR(r.corner[1], -3.0 / std::sqrt(5.0), 1e-4);
  EXPECT_NEAR(r.corner[2], 0.0, 1e-6);
}

TEST(WorstCase, MinimizeMirrorsMaximize) {
  const SparseModel model(dict(2), {{1, 1.5}});
  WorstCaseOptions maxi, mini;
  mini.maximize = false;
  const WorstCaseResult hi = find_worst_case(model, maxi);
  const WorstCaseResult lo = find_worst_case(model, mini);
  EXPECT_NEAR(hi.value, -lo.value, 1e-6);
  EXPECT_GT(hi.value, 0);
}

TEST(WorstCase, QuadraticBowlCornerOnSphere) {
  // f = H2(y0): max at |y0| = radius (monotone in y0^2 beyond 1).
  const SparseModel model(dict(2), {{3, 1.0}});
  WorstCaseOptions opt;
  opt.radius = 2.5;
  const WorstCaseResult r = find_worst_case(model, opt);
  EXPECT_NEAR(std::abs(r.corner[0]), 2.5, 1e-3);
  EXPECT_NEAR(r.value, (2.5 * 2.5 - 1) / std::sqrt(2.0), 1e-3);
}

TEST(WorstCase, BeatsRandomSamplingOnMixedModel) {
  Rng rng(62);
  const SparseModel model(dict(5), {{1, 0.8}, {3, -0.6}, {7, 0.5},
                                    {12, 0.4}, {9, -0.3}});
  WorstCaseOptions opt;
  opt.radius = 3.0;
  const WorstCaseResult r = find_worst_case(model, opt);
  // 20k random points in the ball: none should beat the ascent result.
  Real best_random = -1e300;
  for (int i = 0; i < 20000; ++i) {
    std::vector<Real> x = rng.normal_vector(5);
    const Real norm = nrm2(x);
    const Real target = opt.radius * std::pow(rng.uniform(), 0.2);
    for (Real& v : x) v *= target / norm;
    best_random = std::max(best_random, model.predict(x));
  }
  EXPECT_GE(r.value, best_random - 1e-6);
}

TEST(WorstCase, InvalidOptionsThrow) {
  const SparseModel model(dict(2), {{1, 1.0}});
  WorstCaseOptions opt;
  opt.radius = 0;
  EXPECT_THROW((void)find_worst_case(model, opt), Error);
}

}  // namespace
}  // namespace rsm
