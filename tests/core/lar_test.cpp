#include "core/lar.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "linalg/qr.hpp"
#include "linalg/blas.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

std::vector<Real> synthesize(const Matrix& g, const std::vector<Real>& alpha) {
  std::vector<Real> y(static_cast<std::size_t>(g.rows()), 0.0);
  for (Index m = 0; m < g.cols(); ++m) {
    if (alpha[static_cast<std::size_t>(m)] == 0.0) continue;
    axpy(alpha[static_cast<std::size_t>(m)], g.col(m), y);
  }
  return y;
}

TEST(Lar, FirstSelectionIsMostCorrelatedColumn) {
  Rng rng(301);
  Matrix g = monte_carlo_normal(100, 30, rng);
  std::vector<Real> alpha(30, 0.0);
  alpha[9] = 4.0;
  const std::vector<Real> f = synthesize(g, alpha);
  const SolverPath path = LarSolver().fit_path(g, f, 3);
  ASSERT_GE(path.num_steps(), 1);
  EXPECT_EQ(path.support(0)[0], 9);
}

TEST(Lar, FullPathReachesLeastSquares) {
  // When the path runs to completion (M < K), the final coefficients equal
  // the full least-squares solution — the defining endpoint of LAR.
  Rng rng(302);
  const Index k = 60, m = 8;
  const Matrix g = monte_carlo_normal(k, m, rng);
  const std::vector<Real> f = rng.normal_vector(k);
  const SolverPath path = LarSolver().fit_path(g, f, m);
  const std::vector<Real> dense =
      path.dense_coefficients(path.num_steps() - 1, m);
  const std::vector<Real> ls = QrFactorization(g).solve(f);
  for (Index j = 0; j < m; ++j)
    EXPECT_NEAR(dense[static_cast<std::size_t>(j)],
                ls[static_cast<std::size_t>(j)], 1e-8);
}

TEST(Lar, EquiangularProperty) {
  // Along the path, all active columns keep equal absolute correlation with
  // the residual, strictly larger than any inactive column's.
  Rng rng(303);
  const Index k = 80, m = 25;
  const Matrix g = monte_carlo_normal(k, m, rng);
  // Normalize columns so correlations are directly comparable.
  Matrix x = g;
  for (Index j = 0; j < m; ++j) {
    std::vector<Real> c = x.col(j);
    const Real n = nrm2(c);
    for (Real& v : c) v /= n;
    x.set_col(j, c);
  }
  const std::vector<Real> f = rng.normal_vector(k);
  const SolverPath path = LarSolver().fit_path(x, f, 6);
  ASSERT_GE(path.num_steps(), 4);

  for (Index t = 0; t < 4; ++t) {
    const std::vector<Index> active = path.support(t);
    const std::vector<Real>& coef = path.coefficients[static_cast<std::size_t>(t)];
    std::vector<Real> residual(f.begin(), f.end());
    for (std::size_t s = 0; s < active.size(); ++s)
      axpy(-coef[s], x.col(active[s]), residual);
    std::vector<Real> corr(static_cast<std::size_t>(m));
    gemv_transposed(x, residual, corr);

    Real active_corr = -1;
    for (Index j : active) {
      const Real c = std::abs(corr[static_cast<std::size_t>(j)]);
      if (active_corr < 0) {
        active_corr = c;
      } else {
        EXPECT_NEAR(c, active_corr, 1e-8 * (1 + active_corr))
            << "step " << t << " col " << j;
      }
    }
    const std::set<Index> act(active.begin(), active.end());
    for (Index j = 0; j < m; ++j) {
      if (act.count(j)) continue;
      EXPECT_LE(std::abs(corr[static_cast<std::size_t>(j)]),
                active_corr + 1e-8)
          << "step " << t << " inactive col " << j;
    }
  }
}

TEST(Lar, RecoversSparseSignal) {
  Rng rng(304);
  const Index k = 80, m = 400;
  const Matrix g = monte_carlo_normal(k, m, rng);
  std::vector<Real> alpha(static_cast<std::size_t>(m), 0.0);
  const std::vector<Index> support{11, 57, 203, 333};
  const Real coeffs[] = {3.0, -2.0, 1.5, -1.0};
  for (std::size_t i = 0; i < support.size(); ++i)
    alpha[static_cast<std::size_t>(support[i])] = coeffs[i];
  const std::vector<Real> f = synthesize(g, alpha);
  const SolverPath path = LarSolver().fit_path(g, f, 8);
  const std::vector<Index> final_support = path.support(path.num_steps() - 1);
  const std::set<Index> found(final_support.begin(), final_support.end());
  for (Index s : support) EXPECT_TRUE(found.count(s)) << "missing " << s;
  // Residual after the true support is absorbed is near zero.
  EXPECT_LT(path.residual_norms.back(), 1e-6 * nrm2(f));
}

TEST(Lar, ActiveSetGrowsByOnePerStepWithoutLasso) {
  Rng rng(305);
  const Matrix g = monte_carlo_normal(50, 100, rng);
  const std::vector<Real> f = rng.normal_vector(50);
  const SolverPath path = LarSolver().fit_path(g, f, 12);
  for (Index t = 0; t < path.num_steps(); ++t)
    EXPECT_EQ(static_cast<Index>(path.support(t).size()), t + 1);
}

TEST(Lar, ResidualNormsDecrease) {
  Rng rng(306);
  const Matrix g = monte_carlo_normal(60, 150, rng);
  const std::vector<Real> f = rng.normal_vector(60);
  const SolverPath path = LarSolver().fit_path(g, f, 15);
  for (std::size_t t = 1; t < path.residual_norms.size(); ++t)
    EXPECT_LT(path.residual_norms[t], path.residual_norms[t - 1] + 1e-12);
}

TEST(Lar, CoefficientsShrunkRelativeToLsOnActiveSet) {
  // Before the final step, LAR coefficients are strictly between 0 and the
  // LS fit on the same support (the L1 shrinkage property); check the first
  // selected column's coefficient magnitude is below its LS value.
  Rng rng(307);
  const Index k = 100, m = 20;
  const Matrix g = monte_carlo_normal(k, m, rng);
  const std::vector<Real> f = rng.normal_vector(k);
  const SolverPath path = LarSolver().fit_path(g, f, 5);
  ASSERT_GE(path.num_steps(), 3);
  const Index t = 2;
  const std::vector<Index> sup = path.support(t);
  Matrix g_sup(k, static_cast<Index>(sup.size()));
  for (std::size_t j = 0; j < sup.size(); ++j)
    g_sup.set_col(static_cast<Index>(j), g.col(sup[j]));
  const std::vector<Real> ls = QrFactorization(g_sup).solve(f);
  Real lar_l1 = 0, ls_l1 = 0;
  for (std::size_t j = 0; j < sup.size(); ++j) {
    lar_l1 += std::abs(path.coefficients[static_cast<std::size_t>(t)][j]);
    ls_l1 += std::abs(ls[j]);
  }
  EXPECT_LT(lar_l1, ls_l1);
}

TEST(Lar, LassoModeDropsCrossingCoefficients) {
  // Construct a case known to trigger a LASSO drop and check active sets
  // can shrink, while pure LAR's never does. (Statistically, drops occur in
  // most random instances at sufficient path length.)
  Rng rng(308);
  LarSolver::Options opt;
  opt.lasso = true;
  const LarSolver lasso(opt);
  bool saw_drop = false;
  for (int trial = 0; trial < 20 && !saw_drop; ++trial) {
    const Matrix g = monte_carlo_normal(40, 80, rng);
    const std::vector<Real> f = rng.normal_vector(40);
    const SolverPath path = lasso.fit_path(g, f, 20);
    for (Index t = 1; t < path.num_steps(); ++t) {
      if (path.support(t).size() < path.support(t - 1).size()) {
        saw_drop = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_drop);
}

TEST(Lar, LassoCoefficientsKeepSignConsistency) {
  // LASSO solutions have sign(beta_j) == sign(correlation_j) on the active
  // set; in particular no coefficient sits at exactly zero within the
  // active set after a step.
  Rng rng(309);
  LarSolver::Options opt;
  opt.lasso = true;
  const Matrix g = monte_carlo_normal(50, 100, rng);
  const std::vector<Real> f = rng.normal_vector(50);
  const SolverPath path = LarSolver(opt).fit_path(g, f, 15);
  for (Index t = 0; t < path.num_steps(); ++t) {
    for (Real c : path.coefficients[static_cast<std::size_t>(t)]) {
      if (t + 1 < path.num_steps()) {  // last step may legitimately hit zero
        EXPECT_NE(c, 0.0);
      }
    }
  }
}

TEST(Lar, HandlesDuplicateColumns) {
  Rng rng(310);
  const Index k = 40;
  Matrix g(k, 4);
  const std::vector<Real> c = rng.normal_vector(k);
  g.set_col(0, c);
  g.set_col(1, c);  // duplicate
  g.set_col(2, rng.normal_vector(k));
  g.set_col(3, rng.normal_vector(k));
  const std::vector<Real> f = rng.normal_vector(k);
  const SolverPath path = LarSolver().fit_path(g, f, 4);
  EXPECT_LE(path.num_steps(), 3);
  // No support contains both duplicates.
  for (Index t = 0; t < path.num_steps(); ++t) {
    const std::vector<Index> sup = path.support(t);
    const std::set<Index> s(sup.begin(), sup.end());
    EXPECT_FALSE(s.count(0) && s.count(1));
  }
}

TEST(Lar, ZeroTargetGivesEmptyPath) {
  Rng rng(311);
  const Matrix g = monte_carlo_normal(20, 10, rng);
  const std::vector<Real> f(20, 0.0);
  const SolverPath path = LarSolver().fit_path(g, f, 5);
  EXPECT_EQ(path.num_steps(), 0);
}

}  // namespace
}  // namespace rsm
