#include "core/sobol.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

namespace rsm {
namespace {

std::shared_ptr<const BasisDictionary> dict(Index n) {
  return std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
}

TEST(Sobol, PureLinearModelSplitsBySquaredCoefficients) {
  // f = 3 y0 + 4 y1: variance 25, S0 = 9/25, S1 = 16/25.
  const SparseModel model(dict(3), {{1, 3.0}, {2, 4.0}});
  const SobolIndices s = sobol_indices(model);
  EXPECT_NEAR(s.variance, 25.0, 1e-12);
  EXPECT_NEAR(s.first_order[0], 0.36, 1e-12);
  EXPECT_NEAR(s.first_order[1], 0.64, 1e-12);
  EXPECT_NEAR(s.first_order[2], 0.0, 1e-12);
  EXPECT_EQ(s.interaction_fraction, 0.0);
  // No interactions: total == first order.
  for (Index v = 0; v < 3; ++v)
    EXPECT_NEAR(s.total_effect[static_cast<std::size_t>(v)],
                s.first_order[static_cast<std::size_t>(v)], 1e-12);
}

TEST(Sobol, SquareTermsCountAsMainEffects) {
  // H2(y0) involves only y0: a main effect even though it is quadratic.
  const SparseModel model(dict(2), {{1, 1.0}, {3, 2.0}});  // y0 + 2 H2(y0)
  const SobolIndices s = sobol_indices(model);
  EXPECT_NEAR(s.first_order[0], 1.0, 1e-12);
  EXPECT_NEAR(s.first_order[1], 0.0, 1e-12);
  EXPECT_EQ(s.interaction_fraction, 0.0);
}

TEST(Sobol, CrossTermIsInteraction) {
  // quadratic(2): index 5 = y0*y1. f = y0 + y0*y1.
  const SparseModel model(dict(2), {{1, 1.0}, {5, 1.0}});
  const SobolIndices s = sobol_indices(model);
  EXPECT_NEAR(s.variance, 2.0, 1e-12);
  EXPECT_NEAR(s.first_order[0], 0.5, 1e-12);
  EXPECT_NEAR(s.first_order[1], 0.0, 1e-12);
  EXPECT_NEAR(s.interaction_fraction, 0.5, 1e-12);
  // Both variables carry the interaction in their total effect.
  EXPECT_NEAR(s.total_effect[0], 1.0, 1e-12);
  EXPECT_NEAR(s.total_effect[1], 0.5, 1e-12);
}

TEST(Sobol, FractionsAreConsistent) {
  // Sum of first-order + interaction fraction == 1 for any model with
  // variance (interactions counted once).
  const SparseModel model(dict(4),
                          {{0, 5.0}, {1, 1.0}, {2, -2.0}, {6, 0.7},
                           {9, 1.1}, {12, -0.4}});
  const SobolIndices s = sobol_indices(model);
  Real sum = s.interaction_fraction;
  for (Real f : s.first_order) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Total effects are each >= the first-order share.
  for (std::size_t v = 0; v < s.first_order.size(); ++v)
    EXPECT_GE(s.total_effect[v] + 1e-15, s.first_order[v]);
}

TEST(Sobol, ConstantModelAllZero) {
  const SparseModel model(dict(2), {{0, 7.0}});
  const SobolIndices s = sobol_indices(model);
  EXPECT_EQ(s.variance, 0.0);
  for (Real f : s.first_order) EXPECT_EQ(f, 0.0);
  for (Real f : s.total_effect) EXPECT_EQ(f, 0.0);
}

TEST(Sobol, RankingOrdersByTotalEffect) {
  // y2 dominates, then the y0*y1 interaction pair, y3 absent.
  const SparseModel model(dict(4), {{3, 3.0},   // y2
                                    {9, 1.0}}); // first cross term y0*y1
  const std::vector<Index> rank = rank_variables_by_sensitivity(model);
  ASSERT_EQ(rank.size(), 3u);  // y3 dropped (zero effect)
  EXPECT_EQ(rank[0], 2);
  // y0 and y1 tie; stable sort keeps index order.
  EXPECT_EQ(rank[1], 0);
  EXPECT_EQ(rank[2], 1);
}

}  // namespace
}  // namespace rsm
