#include "stats/covariance.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"
#include "stats/descriptive.hpp"

namespace rsm {
namespace {

TEST(Covariance, InterDieStructure) {
  const Matrix cov = inter_die_covariance(4, 0.5, 1.0);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(cov(i, i), 1.25);
    for (Index j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(cov(i, j), 0.25);
      }
    }
  }
}

TEST(Covariance, InterDieIsPositiveDefinite) {
  const Matrix cov = inter_die_covariance(10, 0.3, 0.8);
  EXPECT_NO_THROW(CholeskyFactorization{cov});
}

TEST(Covariance, SpatialDecay) {
  const std::vector<DiePosition> pos{{0, 0}, {1, 0}, {10, 0}};
  const Matrix cov = spatial_covariance(pos, 0.0, 1.0, 2.0);
  // Correlation decays with distance.
  EXPECT_GT(cov(0, 1), cov(0, 2));
  EXPECT_NEAR(cov(0, 1), std::exp(-0.5), 1e-12);
  EXPECT_NEAR(cov(0, 2), std::exp(-5.0), 1e-12);
  EXPECT_DOUBLE_EQ(cov(0, 0), 1.0);
}

TEST(Covariance, SpatialIsSymmetricPsd) {
  std::vector<DiePosition> pos;
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j)
      pos.push_back({static_cast<Real>(i), static_cast<Real>(j)});
  const Matrix cov = spatial_covariance(pos, 0.2, 1.0, 3.0);
  EXPECT_LT(max_abs_diff(cov, cov.transposed()), 1e-15);
  EXPECT_NO_THROW(CholeskyFactorization{cov});
}

TEST(Covariance, SampleCovarianceKnown) {
  // Two perfectly anticorrelated variables.
  Matrix data(4, 2);
  const Real vals[] = {1, -1, 2, -2, 3, -3, 4, -4};
  for (Index r = 0; r < 4; ++r) {
    data(r, 0) = vals[2 * r];
    data(r, 1) = vals[2 * r + 1];
  }
  const Matrix cov = sample_covariance(data);
  EXPECT_NEAR(cov(0, 0), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), -5.0 / 3.0, 1e-12);
}

TEST(Covariance, SampledCorrelatedMatchesTarget) {
  const Matrix target = inter_die_covariance(3, 0.6, 0.5);
  const CholeskyFactorization chol(target);
  Rng rng(99);
  const Index n = 60000;
  Matrix draws(n, 3);
  for (Index k = 0; k < n; ++k) {
    const std::vector<Real> x = sample_correlated(chol.l(), rng);
    for (Index j = 0; j < 3; ++j) draws(k, j) = x[static_cast<std::size_t>(j)];
  }
  const Matrix est = sample_covariance(draws);
  EXPECT_LT(max_abs_diff(est, target), 0.02);
}

}  // namespace
}  // namespace rsm
