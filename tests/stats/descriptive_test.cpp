#include "stats/descriptive.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace rsm {
namespace {

TEST(Descriptive, Mean) {
  EXPECT_DOUBLE_EQ(mean(std::vector<Real>{1, 2, 3, 4}), 2.5);
  EXPECT_THROW((void)mean(std::vector<Real>{}), Error);
}

TEST(Descriptive, VarianceUnbiased) {
  // Sample variance of {1,2,3,4,5} is 2.5 with the n-1 divisor.
  EXPECT_DOUBLE_EQ(variance(std::vector<Real>{1, 2, 3, 4, 5}), 2.5);
  EXPECT_DOUBLE_EQ(variance(std::vector<Real>{7}), 0.0);
}

TEST(Descriptive, Stddev) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<Real>{1, 3}), std::sqrt(2.0));
}

TEST(Descriptive, SkewnessSigns) {
  EXPECT_GT(skewness(std::vector<Real>{0, 0, 0, 0, 10}), 0.5);
  EXPECT_LT(skewness(std::vector<Real>{0, 10, 10, 10, 10}), -0.5);
  EXPECT_NEAR(skewness(std::vector<Real>{-1, 0, 1}), 0.0, 1e-12);
}

TEST(Descriptive, KurtosisOfTwoPoint) {
  // Symmetric two-point distribution has excess kurtosis -2.
  EXPECT_NEAR(excess_kurtosis(std::vector<Real>{-1, 1, -1, 1}), -2.0, 1e-12);
}

TEST(Descriptive, CorrelationPerfect) {
  const std::vector<Real> x{1, 2, 3, 4};
  const std::vector<Real> y{2, 4, 6, 8};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  const std::vector<Real> z{8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, z), -1.0, 1e-12);
}

TEST(Descriptive, CorrelationDegenerate) {
  const std::vector<Real> x{1, 2, 3};
  const std::vector<Real> c{5, 5, 5};
  EXPECT_EQ(correlation(x, c), 0.0);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<Real> x{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(x, 0.0), 10);
  EXPECT_DOUBLE_EQ(quantile(x, 1.0), 40);
  EXPECT_DOUBLE_EQ(quantile(x, 0.5), 25);
  EXPECT_DOUBLE_EQ(quantile(x, 1.0 / 3.0), 20);
}

TEST(Descriptive, QuantileUnsortedInput) {
  const std::vector<Real> x{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(quantile(x, 0.5), 25);
}

TEST(Descriptive, Summary) {
  const Summary s = summarize(std::vector<Real>{4, 1, 3, 2});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

}  // namespace
}  // namespace rsm
