#include "stats/pca.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"
#include "stats/covariance.hpp"
#include "stats/descriptive.hpp"

namespace rsm {
namespace {

TEST(Pca, IdentityCovarianceIsPassthroughUpToRotation) {
  const Pca pca(Matrix::identity(4));
  EXPECT_EQ(pca.num_factors(), 4);
  EXPECT_NEAR(pca.explained_variance_fraction(), 1.0, 1e-12);
  for (Real v : pca.eigenvalues()) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Pca, DropsNullDirections) {
  // Rank-1 covariance: v v' with v = (1,1)/sqrt(2), eigenvalues {1, 0}.
  Matrix cov{{0.5, 0.5}, {0.5, 0.5}};
  const Pca pca(cov);
  EXPECT_EQ(pca.num_factors(), 1);
  EXPECT_NEAR(pca.eigenvalues()[0], 1.0, 1e-12);
}

TEST(Pca, RoundTripWithinRetainedSubspace) {
  const Matrix cov = inter_die_covariance(5, 0.4, 0.7);
  const Pca pca(cov);
  ASSERT_EQ(pca.num_factors(), 5);
  const std::vector<Real> dx{0.1, -0.2, 0.3, 0.0, -0.1};
  const std::vector<Real> dy = pca.to_factors(dx);
  const std::vector<Real> back = pca.to_physical(dy);
  for (std::size_t i = 0; i < dx.size(); ++i)
    EXPECT_NEAR(back[i], dx[i], 1e-10);
}

TEST(Pca, WhitensCorrelatedSamples) {
  // dX ~ N(0, cov); dY = to_factors(dX) must be ~ N(0, I).
  const Matrix cov = inter_die_covariance(4, 0.8, 0.5);
  const Pca pca(cov);
  const CholeskyFactorization chol(cov);
  Rng rng(123);
  const Index n = 50000;
  Matrix factors(n, pca.num_factors());
  for (Index k = 0; k < n; ++k) {
    const std::vector<Real> dx = sample_correlated(chol.l(), rng);
    const std::vector<Real> dy = pca.to_factors(dx);
    for (Index j = 0; j < pca.num_factors(); ++j)
      factors(k, j) = dy[static_cast<std::size_t>(j)];
  }
  const Matrix est = sample_covariance(factors);
  EXPECT_LT(max_abs_diff(est, Matrix::identity(pca.num_factors())), 0.03);
}

TEST(Pca, ExplainedVarianceFractionPartial) {
  // Eigenvalues 10 and 1e-14*10 -> keeping one factor explains ~everything;
  // with a coarse tolerance the small one is dropped.
  Matrix cov(2, 2);
  cov(0, 0) = 10;
  cov(1, 1) = 1e-6;
  const Pca pca(cov, /*variance_tolerance=*/1e-4);
  EXPECT_EQ(pca.num_factors(), 1);
  EXPECT_GT(pca.explained_variance_fraction(), 0.999);
}

TEST(Pca, FactorsAreStandardNormalScaled) {
  // A diagonal covariance: to_factors should divide by sqrt(variances).
  Matrix cov(3, 3);
  cov(0, 0) = 4;
  cov(1, 1) = 9;
  cov(2, 2) = 16;
  const Pca pca(cov);
  // dx aligned with the largest-variance axis (sorted first).
  const std::vector<Real> dy = pca.to_factors(std::vector<Real>{0, 0, 4});
  // Largest eigenvalue 16 -> factor = 4 / sqrt(16) = 1 (up to sign/order).
  Real max_component = 0;
  for (Real v : dy) max_component = std::max(max_component, std::abs(v));
  EXPECT_NEAR(max_component, 1.0, 1e-10);
}

TEST(Pca, RejectsAllZeroCovariance) {
  EXPECT_THROW(Pca{Matrix(3, 3)}, Error);
}

}  // namespace
}  // namespace rsm
