#include "stats/lhs.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"

namespace rsm {
namespace {

TEST(InverseNormalCdf, KnownValues) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.8413447460685429), 1.0, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.9772498680518208), 2.0, 1e-6);
  EXPECT_NEAR(inverse_normal_cdf(0.0013498980316300933), -3.0, 1e-6);
}

TEST(InverseNormalCdf, Symmetry) {
  for (Real p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(inverse_normal_cdf(p), -inverse_normal_cdf(1 - p), 1e-8);
  }
}

TEST(InverseNormalCdf, DomainChecks) {
  EXPECT_THROW((void)inverse_normal_cdf(0.0), Error);
  EXPECT_THROW((void)inverse_normal_cdf(1.0), Error);
  EXPECT_THROW((void)inverse_normal_cdf(-0.5), Error);
}

TEST(Lhs, ShapeAndStratification) {
  Rng rng(1);
  const Index k = 100, n = 3;
  const Matrix s = latin_hypercube_normal(k, n, rng);
  EXPECT_EQ(s.rows(), k);
  EXPECT_EQ(s.cols(), n);
  // Stratification: each column has exactly one draw per stratum, so the
  // empirical CDF is near-perfect — sorted values must straddle the stratum
  // boundaries.
  for (Index v = 0; v < n; ++v) {
    std::vector<Real> col = s.col(v);
    std::sort(col.begin(), col.end());
    for (Index i = 0; i < k; ++i) {
      const Real lo = (i == 0) ? -10.0
                               : inverse_normal_cdf(static_cast<Real>(i) / k);
      const Real hi = (i == k - 1)
                          ? 10.0
                          : inverse_normal_cdf(static_cast<Real>(i + 1) / k);
      EXPECT_GE(col[static_cast<std::size_t>(i)], lo);
      EXPECT_LE(col[static_cast<std::size_t>(i)], hi);
    }
  }
}

TEST(Lhs, MeanVarianceBetterThanMc) {
  // LHS mean estimate has far lower variance than plain MC at equal K.
  const Index k = 50, trials = 200;
  Real lhs_sq = 0, mc_sq = 0;
  for (Index t = 0; t < trials; ++t) {
    Rng rng(static_cast<std::uint64_t>(t + 1));
    const Matrix lhs = latin_hypercube_normal(k, 1, rng);
    const Matrix mc = monte_carlo_normal(k, 1, rng);
    const Real m_lhs = mean(lhs.col(0));
    const Real m_mc = mean(mc.col(0));
    lhs_sq += m_lhs * m_lhs;
    mc_sq += m_mc * m_mc;
  }
  EXPECT_LT(lhs_sq, mc_sq / 10);
}

TEST(Lhs, MonteCarloMoments) {
  Rng rng(3);
  const Matrix s = monte_carlo_normal(20000, 2, rng);
  for (Index v = 0; v < 2; ++v) {
    const std::vector<Real> col = s.col(v);
    EXPECT_NEAR(mean(col), 0.0, 0.03);
    EXPECT_NEAR(variance(col), 1.0, 0.05);
  }
}

}  // namespace
}  // namespace rsm
