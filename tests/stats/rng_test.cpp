#include "stats/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"

namespace rsm {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const Real u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const Real u = rng.uniform(-2, 3);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMomentsMatch) {
  Rng rng(6);
  std::vector<Real> x(200000);
  for (Real& v : x) v = rng.uniform();
  EXPECT_NEAR(mean(x), 0.5, 0.01);
  EXPECT_NEAR(variance(x), 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(7);
  std::vector<Real> x(200000);
  rng.fill_normal(x);
  EXPECT_NEAR(mean(x), 0.0, 0.02);
  EXPECT_NEAR(variance(x), 1.0, 0.03);
  EXPECT_NEAR(skewness(x), 0.0, 0.05);
  EXPECT_NEAR(excess_kurtosis(x), 0.0, 0.1);
}

TEST(Rng, NormalTailFractions) {
  // P(|X| > 2) ~ 4.55%, P(|X| > 3) ~ 0.27%.
  Rng rng(8);
  int beyond2 = 0, beyond3 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const Real x = std::abs(rng.normal());
    if (x > 2) ++beyond2;
    if (x > 3) ++beyond3;
  }
  EXPECT_NEAR(static_cast<Real>(beyond2) / n, 0.0455, 0.004);
  EXPECT_NEAR(static_cast<Real>(beyond3) / n, 0.0027, 0.001);
}

TEST(Rng, NormalScaled) {
  Rng rng(9);
  std::vector<Real> x(100000);
  for (Real& v : x) v = rng.normal(10.0, 2.0);
  EXPECT_NEAR(mean(x), 10.0, 0.05);
  EXPECT_NEAR(stddev(x), 2.0, 0.05);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(10);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_index(7))];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<Index> items(50);
  std::iota(items.begin(), items.end(), Index{0});
  rng.shuffle(items);
  std::vector<Index> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (Index i = 0; i < 50; ++i)
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  // And it actually moved things.
  std::vector<Index> identity(50);
  std::iota(identity.begin(), identity.end(), Index{0});
  EXPECT_NE(items, identity);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(12);
  Rng child = parent.split();
  std::vector<Real> a(20000), b(20000);
  parent.fill_normal(a);
  child.fill_normal(b);
  EXPECT_LT(std::abs(correlation(a, b)), 0.03);
}

TEST(Rng, NormalVectorSize) {
  Rng rng(13);
  EXPECT_EQ(rng.normal_vector(17).size(), 17u);
}

TEST(Xoshiro, KnownNonDegenerate) {
  // Any seed (even 0) must produce a non-stuck stream.
  Xoshiro256 eng(0);
  std::uint64_t first = eng();
  int distinct = 0;
  for (int i = 0; i < 100; ++i)
    if (eng() != first) ++distinct;
  EXPECT_GT(distinct, 95);
}

}  // namespace
}  // namespace rsm
