#!/usr/bin/env python3
"""Fixture: schema mirror that lags the C++ taxonomy by one code name."""

ERROR_CODE_NAMES = (
    "ok",
)
