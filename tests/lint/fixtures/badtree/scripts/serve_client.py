# Fixture: the serving client's error-code list is out of ORDER relative
# to the C++ enum (ok/singular-matrix swapped), which silently mislabels
# every decoded error frame — membership checks alone would not catch it.
ERROR_CODE_NAMES = [
    "singular-matrix", "ok",
]
