// Fixture: ErrorCode taxonomy with three deliberate coverage bugs —
// kGhostCode has no error_code_name() case, kNumErrorCodes is stale, and
// "ghost-code" is absent from the report schema's ERROR_CODE_NAMES.
#pragma once

namespace rsm {

enum class ErrorCode {
  kOk = 0,
  kSingularMatrix,
  kGhostCode,
};

inline constexpr int kNumErrorCodes = 2;

}  // namespace rsm
