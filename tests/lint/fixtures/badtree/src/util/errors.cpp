// Fixture: the switch is missing ErrorCode::kGhostCode.
#include "util/errors.hpp"

namespace rsm {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kSingularMatrix: return "singular-matrix";
  }
  return "?";
}

}  // namespace rsm
