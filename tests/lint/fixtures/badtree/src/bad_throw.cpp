// Fixture: throws that bypass the rsm error taxonomy.
#include <stdexcept>

void bad_throw(bool which) {
  if (which) throw std::runtime_error("outside the taxonomy");
  throw 42;
}
