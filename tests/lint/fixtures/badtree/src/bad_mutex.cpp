// Fixture for the no-naked-mutex rule: raw std locking vocabulary outside
// src/util/sync.* must fire; the rsm-lint-allow'd line and the sync-layer
// spellings in comments/strings must stay silent.
#include <mutex>
#include <condition_variable>

namespace bad {

std::mutex g_mutex;                           // finding 1: raw std::mutex
std::condition_variable g_cv;                 // finding 2: raw CV
std::shared_mutex g_cache_lock;  // rsm-lint-allow(no-naked-mutex)

// "std::mutex in a string literal" and std::mutex in this comment are fine.
inline const char* kDoc = "prefer rsm::Mutex over std::mutex";

void locked_increment(int& value) {
  std::lock_guard<std::mutex> lock(g_mutex);  // finding 3: raw lock_guard
  ++value;
}

}  // namespace bad
