// Fixture for the no-raw-thread rule: exactly two findings (the bare
// std::thread and the std::async). std::this_thread and the suppressed
// jthread must NOT fire.
#include <future>
#include <thread>

void bad_spawn() {
  std::thread worker([] {});  // finding 1: raw thread outside src/util/
  worker.join();
  auto f = std::async([] { return 1; });  // finding 2: raw async
  (void)f.get();
}

void fine_sleep() {
  std::this_thread::yield();  // not a finding: sleeping is not spawning
}

void suppressed_spawn() {
  std::jthread w([] {});  // rsm-lint-allow(no-raw-thread)
}
