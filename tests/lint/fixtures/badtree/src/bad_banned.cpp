// Fixture: banned unbounded/unchecked C functions.
#include <cstdio>
#include <cstdlib>
#include <cstring>

int bad_banned(char* dst, const char* src) {
  strcpy(dst, src);          // banned-functions
  sprintf(dst, "%s", src);   // banned-functions
  return atoi(src);          // banned-functions
}
