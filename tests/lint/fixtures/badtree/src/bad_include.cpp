// Fixture: including an implementation file.
#include "bad_rng.cpp"
