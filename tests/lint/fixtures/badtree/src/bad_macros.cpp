// Fixture: side-effecting RSM_DCHECK / RSM_TRACE_SPAN arguments and a
// dynamic span name — each one a release-build behavior divergence.
#include <string>
#include <vector>

#define RSM_DCHECK(expr) static_cast<void>(sizeof((expr) ? 1 : 0))
#define RSM_TRACE_SPAN(name) static_cast<void>(name)

void bad_macros(std::vector<int>& v, std::string& name) {
  int i = 0;
  RSM_DCHECK(++i < 10);             // increment
  RSM_DCHECK(i = 3);                // assignment
  RSM_DCHECK(v.push_back(1), true); // mutating call
  RSM_TRACE_SPAN(name.c_str());     // dynamic span name
}
