// Fixture: nondeterministic RNG sources outside the seeded factories.
#include <cstdlib>
#include <random>

unsigned bad_rng() {
  std::random_device rd;        // unseeded-rng
  return rd() + static_cast<unsigned>(rand());  // unseeded-rng
}
