// Fixture: src/ header without #pragma once.

namespace rsm {
inline int bad_header() { return 1; }
}  // namespace rsm
