// Fixture for the metric-name-literal rule: fully dynamic metric names
// defeat dashboards, check_bench_json.py, and bench_compare.py, which all
// key on stable literal names. Exactly two lines below must fire.
#include <string>

namespace obs {
struct Counter {
  void increment() {}
};
struct Gauge {
  void set(double) {}
};
struct Registry {
  Counter& counter(const std::string&);
  Gauge& gauge(const std::string&);
};
Registry& metrics();
}  // namespace obs

void bad_metric_names(const std::string& suffix) {
  obs::metrics().counter(std::string("dyn.") + suffix).increment();  // fires
  obs::metrics().gauge(suffix).set(1.0);                             // fires
  obs::metrics().counter("ok.literal.name").increment();
  obs::metrics().counter("ok.prefix." + suffix).increment();
  obs::metrics()
      .gauge(suffix)  // rsm-lint-allow(metric-name-literal)
      .set(2.0);
}
