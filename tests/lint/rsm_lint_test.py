#!/usr/bin/env python3
"""Tests for scripts/rsm_lint.py (run by ctest as `lint.rsm_lint`).

Verifies: the real tree is clean; every rule fires on its fixture in
tests/lint/fixtures/badtree; --only / --disable toggles select rules; and
per-line rsm-lint-allow() suppression works.

Usage: rsm_lint_test.py <repo_root>
"""

import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else \
    Path(__file__).resolve().parent.parent.parent
LINT = REPO_ROOT / "scripts" / "rsm_lint.py"
BADTREE = REPO_ROOT / "tests" / "lint" / "fixtures" / "badtree"

# rule id -> minimum number of findings its fixture must produce
EXPECTED_RULE_FINDINGS = {
    "error-code-coverage": 4,  # missing case, stale count, schema lag,
                               # misordered client list
    "macro-side-effects": 3,   # ++, =, mutating call
    "unseeded-rng": 2,         # random_device, rand()
    "throw-taxonomy": 2,       # std::runtime_error, throw 42
    "include-cpp": 1,
    "header-hygiene": 1,
    "banned-functions": 3,     # strcpy, sprintf, atoi
    "span-name-literal": 1,
    "metric-name-literal": 2,  # dynamic counter + bare-variable gauge
                               # (exact; see below)
    "no-raw-thread": 2,        # std::thread, std::async (exact; see below)
    "no-naked-mutex": 3,       # std::mutex, std::condition_variable,
                               # std::lock_guard (exact; see below)
}

failures = []


def check(condition, label):
    print(("ok   " if condition else "FAIL ") + label)
    if not condition:
        failures.append(label)


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout


def main():
    # 1. The real tree must be clean.
    code, out = run_lint("--root", str(REPO_ROOT))
    check(code == 0, f"real tree is clean (exit {code})\n{out if code else ''}")

    # 2. The linter advertises at least 7 active rules.
    code, out = run_lint("--list-rules")
    rules = [r for r in out.split() if r]
    check(code == 0 and len(rules) >= 7,
          f"--list-rules reports >= 7 rules (got {len(rules)})")
    check(sorted(rules) == sorted(EXPECTED_RULE_FINDINGS),
          "rule ids match the fixture expectations")

    # 3. Each rule fires on the fixture tree, both in a full run and when
    #    selected alone with --only (toggleability).
    code, full_out = run_lint("--root", str(BADTREE), "--include-fixtures")
    check(code == 1, "fixture tree fails the full run")
    for rule, minimum in EXPECTED_RULE_FINDINGS.items():
        hits = full_out.count(f"[{rule}]")
        check(hits >= minimum,
              f"rule {rule} fires on its fixture ({hits} >= {minimum})")
        only_code, only_out = run_lint(
            "--root", str(BADTREE), "--include-fixtures", "--only", rule)
        only_hits = only_out.count(f"[{rule}]")
        other_hits = sum(only_out.count(f"[{r}]")
                         for r in EXPECTED_RULE_FINDINGS if r != rule)
        check(only_code == 1 and only_hits >= minimum and other_hits == 0,
              f"--only {rule} isolates the rule")

    # 3b. no-raw-thread is exact on its fixture: the std::this_thread use
    #     and the rsm-lint-allow'd jthread must not fire, so the count is
    #     exactly 2, not >= 2.
    hits = full_out.count("[no-raw-thread]")
    check(hits == 2,
          f"no-raw-thread fires exactly twice on the fixture (got {hits})")

    # 3c. metric-name-literal is exact too: the literal name, the
    #     literal-prefix concatenation, and the rsm-lint-allow'd call in
    #     bad_metrics.cpp must all stay silent.
    hits = full_out.count("[metric-name-literal]")
    check(hits == 2,
          f"metric-name-literal fires exactly twice on the fixture "
          f"(got {hits})")

    # 3d. no-naked-mutex is exact: the rsm-lint-allow'd shared_mutex and
    #     the comment/string mentions in bad_mutex.cpp must stay silent, so
    #     exactly the mutex, condition_variable, and lock_guard lines fire.
    hits = full_out.count("[no-naked-mutex]")
    check(hits == 3,
          f"no-naked-mutex fires exactly three times on the fixture "
          f"(got {hits})")

    # 4. Disabling every rule yields a clean exit on the fixture tree.
    code, _ = run_lint("--root", str(BADTREE), "--include-fixtures",
                       "--disable", ",".join(EXPECTED_RULE_FINDINGS))
    check(code == 0, "--disable of every rule silences the fixture tree")

    # 5. Per-line suppression comments work.
    with tempfile.TemporaryDirectory() as tmp:
        src = Path(tmp) / "src"
        src.mkdir()
        (src / "suppressed.cpp").write_text(
            "#include <cstdlib>\n"
            "int f() { return rand(); }  // rsm-lint-allow(unseeded-rng)\n",
            encoding="utf-8")
        code, _ = run_lint("--root", tmp, "--only", "unseeded-rng")
        check(code == 0, "rsm-lint-allow() suppresses a finding")
        (src / "suppressed.cpp").write_text(
            "#include <cstdlib>\nint f() { return rand(); }\n",
            encoding="utf-8")
        code, _ = run_lint("--root", tmp, "--only", "unseeded-rng")
        check(code == 1, "the same line without the comment still fires")

    # 6. Unknown rule names are rejected loudly.
    code, _ = run_lint("--only", "no-such-rule")
    check(code == 2, "unknown --only rule exits 2")

    if failures:
        print(f"\n{len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("\nall rsm-lint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
