// Codec contract: encode -> decode is the identity on the model (to the
// bit), and every corruption of the byte stream fails closed with the
// structured error the taxonomy promises — IoError for "not a model",
// VersionMismatchError for "a model this build/caller cannot honor".
#include "serve/model_codec.hpp"

#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/crc32.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/errors.hpp"

namespace rsm::serve {
namespace {

bool same_bits(Real a, Real b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Coefficients chosen to break any codec that round-trips through decimal
/// text: a subnormal, a negative zero, an odd irrational, and a value with
/// all mantissa bits set.
SparseModel awkward_model() {
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(4));
  return SparseModel(
      dict, {{0, std::numeric_limits<Real>::denorm_min()},
             {1, 0.1},  // not exactly representable in binary64
             {3, std::bit_cast<Real>(std::uint64_t{0x3FEFFFFFFFFFFFFF})},
             {7, -12345.678901234567},
             {12, 3.0e-200}});
}

/// Recomputes the trailing CRC after a deliberate patch, so the test hits
/// the *semantic* validation layer rather than the checksum.
void fix_crc(std::string& bytes) {
  const std::uint32_t crc =
      io::crc32(bytes.data(), bytes.size() - 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
}

TEST(ModelCodec, RoundTripIsBitIdentical) {
  const SparseModel model = awkward_model();
  const SparseModel decoded = decode_model(encode_model(model));

  ASSERT_EQ(decoded.num_terms(), model.num_terms());
  for (std::size_t t = 0; t < model.terms().size(); ++t) {
    EXPECT_EQ(decoded.terms()[t].basis_index, model.terms()[t].basis_index);
    EXPECT_TRUE(same_bits(decoded.terms()[t].coefficient,
                          model.terms()[t].coefficient));
  }
  ASSERT_EQ(decoded.dictionary().num_variables(),
            model.dictionary().num_variables());
  ASSERT_EQ(decoded.dictionary().size(), model.dictionary().size());
  EXPECT_EQ(dictionary_fingerprint(decoded.dictionary()),
            dictionary_fingerprint(model.dictionary()));

  Rng rng(11);
  const Matrix probes = monte_carlo_normal(100, 4, rng);
  for (Index r = 0; r < probes.rows(); ++r) {
    ASSERT_TRUE(same_bits(decoded.predict(probes.row(r)),
                          model.predict(probes.row(r))));
    const std::vector<Real> ga = model.gradient(probes.row(r));
    const std::vector<Real> gb = decoded.gradient(probes.row(r));
    for (std::size_t j = 0; j < ga.size(); ++j)
      ASSERT_TRUE(same_bits(ga[j], gb[j]));
  }
}

TEST(ModelCodec, EncodingIsDeterministic) {
  const SparseModel model = awkward_model();
  EXPECT_EQ(encode_model(model), encode_model(model));
  // Decode -> re-encode reproduces the exact artifact (no normalization
  // drift), which is what makes fingerprint-pinned serving meaningful.
  EXPECT_EQ(encode_model(decode_model(encode_model(model))),
            encode_model(model));
}

TEST(ModelCodec, EveryTruncationFailsClosedAsIoError) {
  const std::string bytes = encode_model(awkward_model());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)decode_model(std::string_view(bytes).substr(0, len)),
                 IoError)
        << "prefix length " << len;
  }
}

TEST(ModelCodec, EverySingleBitFlipFailsClosed) {
  const std::string original = encode_model(awkward_model());
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    std::string bytes = original;
    bytes[pos] = static_cast<char>(
        static_cast<unsigned char>(bytes[pos]) ^ (1u << (pos % 8)));
    // The CRC catches flips in the body; flips inside the CRC field itself
    // mismatch the (intact) body. Either way: IoError, never a model.
    EXPECT_THROW((void)decode_model(bytes), IoError) << "byte " << pos;
  }
}

TEST(ModelCodec, TrailingGarbageFailsClosed) {
  std::string bytes = encode_model(awkward_model());
  bytes += '\0';
  EXPECT_THROW((void)decode_model(bytes), IoError);
}

TEST(ModelCodec, BadMagicFailsClosedEvenWithValidCrc) {
  std::string bytes = encode_model(awkward_model());
  bytes[0] = 'X';
  fix_crc(bytes);
  EXPECT_THROW((void)decode_model(bytes), IoError);
}

TEST(ModelCodec, UnknownFormatVersionIsVersionMismatch) {
  std::string bytes = encode_model(awkward_model());
  const std::uint32_t future = kModelFormatVersion + 1;
  std::memcpy(bytes.data() + kModelMagic.size(), &future, 4);
  fix_crc(bytes);
  try {
    (void)decode_model(bytes);
    FAIL() << "decode accepted a future format version";
  } catch (const VersionMismatchError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kVersionMismatch);
  }
}

TEST(ModelCodec, FingerprintTamperIsVersionMismatch) {
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(2));
  const SparseModel model(dict, {{0, 1.5}, {2, -2.5}});
  std::string bytes = encode_model(model);
  // Dictionary encoding for linear(2): u32 nvars, u32 nidx=3, constant
  // (u16 0), then two single-factor indices (u16 1 + u32 var + u16 order).
  const std::size_t dict_bytes = 4 + 4 + 2 + 2 * (2 + 4 + 2);
  const std::size_t fp_offset = kModelMagic.size() + 4 + dict_bytes;
  bytes[fp_offset] = static_cast<char>(
      static_cast<unsigned char>(bytes[fp_offset]) ^ 0xFF);
  fix_crc(bytes);
  EXPECT_THROW((void)decode_model(bytes), VersionMismatchError);
}

TEST(ModelCodec, FingerprintDistinguishesDictionaries) {
  const BasisDictionary a = BasisDictionary::linear(4);
  const BasisDictionary b = BasisDictionary::linear(5);
  const BasisDictionary c = BasisDictionary::quadratic(4);
  EXPECT_NE(dictionary_fingerprint(a), dictionary_fingerprint(b));
  EXPECT_NE(dictionary_fingerprint(a), dictionary_fingerprint(c));
  EXPECT_EQ(dictionary_fingerprint(a),
            dictionary_fingerprint(BasisDictionary::linear(4)));
}

TEST(ModelCodec, EmptyModelRoundTrips) {
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(3));
  const SparseModel model(dict, {});
  const SparseModel decoded = decode_model(encode_model(model));
  EXPECT_EQ(decoded.num_terms(), 0);
  EXPECT_EQ(decoded.dictionary().num_variables(), 3);
}

}  // namespace
}  // namespace rsm::serve
