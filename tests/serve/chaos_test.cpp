// Socket chaos harness: the overload / deadline / reload defenses under
// deterministic abuse. Connections are socketpair ends adopted via
// adopt_connection() and every event-loop cycle is an explicit poll_once()
// call, so each scenario is a scripted sequence with exact expected
// counters — no sleeps racing a server thread. The storm test draws its
// abuse schedule from SocketFaultInjector, the socket-side sibling of the
// filesystem injector, so "which connection misbehaves how" is a pure
// function of the seed and the expected counters can be recomputed in the
// test from the same schedule.
#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/wire.hpp"
#include "stats/rng.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace rsm::serve {
namespace {

bool same_bits(Real a, Real b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Non-blocking client end of an adopted socketpair connection.
class PairClient {
 public:
  PairClient() = default;
  ~PairClient() { close(); }
  PairClient(const PairClient&) = delete;
  PairClient& operator=(const PairClient&) = delete;

  /// Creates the pair and hands the server end to `server`. A non-zero
  /// `server_sndbuf` shrinks the server->client pipe first (the kernel
  /// clamps to its floor), so a response can overflow it — the setup the
  /// write-deadline test needs to model a peer that stops reading.
  void connect(ModelServer& server, int server_sndbuf = 0) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    if (server_sndbuf > 0) {
      ASSERT_EQ(::setsockopt(fds[1], SOL_SOCKET, SO_SNDBUF, &server_sndbuf,
                             sizeof server_sndbuf),
                0);
    }
    fd_ = fds[0];
    server.adopt_connection(fds[1]);
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_raw(std::string_view bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Drains whatever the server has flushed so far into the frame buffer.
  void pump() {
    char chunk[65536];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, MSG_DONTWAIT);
      if (n <= 0) break;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::optional<Frame> next_frame() { return try_extract_frame(buffer_); }

  /// True when the server has closed its end and nothing remains buffered.
  bool at_eof() {
    if (!buffer_.empty()) return false;
    char byte = 0;
    return ::recv(fd_, &byte, 1, MSG_DONTWAIT) == 0;
  }

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct ErrorFrame {
  ErrorCode code;
  std::string message;
  std::uint32_t retry_after_ms = 0;
};

ErrorFrame parse_error(const Frame& frame) {
  EXPECT_EQ(frame.type, MessageType::kErrorResponse);
  WireReader in(frame.payload, "chaos error frame");
  ErrorFrame out;
  out.code = static_cast<ErrorCode>(in.u8());
  out.message = in.bytes();
  if (out.code == ErrorCode::kOverloaded) out.retry_after_ms = in.u32();
  return out;
}

class ChaosTest : public ::testing::Test {
 protected:
  static constexpr Index kVars = 4;

  void SetUp() override {
    root_ = ::testing::TempDir() + "rsm_chaos_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    auto dict =
        std::make_shared<BasisDictionary>(BasisDictionary::quadratic(kVars));
    Rng rng(5);
    std::vector<ModelTerm> terms;
    for (Index m = 0; m < dict->size(); m += 2)
      terms.push_back({m, rng.normal()});
    model_ = SparseModel(dict, std::move(terms));
    registry_ = std::make_unique<ModelRegistry>(root_ + "/registry");
    registry_->save("m", model_);
  }

  /// A server driven only through poll_once(); never run() — no thread.
  void start(ServerOptions overrides) {
    overrides.socket_path = root_ + "/server.sock";
    overrides.registry_root = root_ + "/registry";
    overrides.num_threads = 1;
    server_ = std::make_unique<ModelServer>(std::move(overrides));
  }

  [[nodiscard]] static std::string eval_payload(const std::vector<Real>& x,
                                                std::uint32_t version = 0) {
    std::string payload;
    put_bytes(payload, "m");
    put_u32(payload, version);  // 0 = latest
    put_u32(payload, static_cast<std::uint32_t>(x.size()));
    for (const Real v : x) put_real(payload, v);
    return payload;
  }

  [[nodiscard]] static std::string eval_frame(const std::vector<Real>& x,
                                              std::uint32_t version = 0) {
    return encode_frame(MessageType::kEvalRequest, eval_payload(x, version));
  }

  std::string root_;
  SparseModel model_;
  std::unique_ptr<ModelRegistry> registry_;
  std::unique_ptr<ModelServer> server_;
};

// ---- The injector itself: deterministic, seeded, lane-isolated. ----

TEST(SocketFaultInjectorTest, SameSeedSameSchedule) {
  SocketFaultInjector::Options options;
  options.fault_rate = 0.5;
  options.seed = 1234;
  SocketFaultInjector a(options);
  SocketFaultInjector b(options);
  for (std::uint64_t op = 0; op < 200; ++op)
    EXPECT_EQ(a.kind(op), b.kind(op)) << "op " << op;
}

TEST(SocketFaultInjectorTest, RateZeroIsSilentRateOneAlwaysFires) {
  SocketFaultInjector off(SocketFaultInjector::Options{});
  SocketFaultInjector::Options always;
  always.fault_rate = 1.0;
  SocketFaultInjector on(always);
  for (std::uint64_t op = 0; op < 200; ++op) {
    EXPECT_EQ(off.kind(op), SocketFaultKind::kNone);
    EXPECT_NE(on.kind(op), SocketFaultKind::kNone);
  }
}

TEST(SocketFaultInjectorTest, FullRateCoversEveryFaultKind) {
  SocketFaultInjector::Options options;
  options.fault_rate = 1.0;
  options.seed = 99;
  SocketFaultInjector injector(options);
  int seen[5] = {0, 0, 0, 0, 0};
  for (std::uint64_t op = 0; op < 400; ++op)
    ++seen[static_cast<int>(injector.kind(op))];
  EXPECT_EQ(seen[static_cast<int>(SocketFaultKind::kNone)], 0);
  EXPECT_GT(seen[static_cast<int>(SocketFaultKind::kTornWrite)], 0);
  EXPECT_GT(seen[static_cast<int>(SocketFaultKind::kShortRead)], 0);
  EXPECT_GT(seen[static_cast<int>(SocketFaultKind::kStalledPeer)], 0);
  EXPECT_GT(seen[static_cast<int>(SocketFaultKind::kMidFrameDisconnect)], 0);
}

TEST(SocketFaultInjectorTest, KindNamesAreStable) {
  EXPECT_STREQ(socket_fault_kind_name(SocketFaultKind::kNone), "none");
  EXPECT_STREQ(socket_fault_kind_name(SocketFaultKind::kTornWrite),
               "torn-write");
  EXPECT_STREQ(socket_fault_kind_name(SocketFaultKind::kShortRead),
               "short-read");
  EXPECT_STREQ(socket_fault_kind_name(SocketFaultKind::kStalledPeer),
               "stalled-peer");
  EXPECT_STREQ(socket_fault_kind_name(SocketFaultKind::kMidFrameDisconnect),
               "mid-frame-disconnect");
}

// ---- Overload: shedding is per offender, never global. ----

TEST_F(ChaosTest, SheddingNeverBlocksHealthyConnections) {
  ServerOptions options;
  options.max_inflight_requests = 8;
  options.max_pending_per_connection = 2;
  options.retry_after_ms = 17;
  start(std::move(options));

  PairClient firehose;
  PairClient healthy;
  firehose.connect(*server_);
  healthy.connect(*server_);

  // Six tiny frames in one cycle against a per-connection cap of 2: the
  // global budget (8) is never the limiter, so the healthy request in the
  // same cycle must be admitted.
  const std::string list_frame =
      encode_frame(MessageType::kListModelsRequest, "");
  std::string burst;
  for (int i = 0; i < 6; ++i) burst += list_frame;
  firehose.send_raw(burst);
  const std::vector<Real> point(static_cast<std::size_t>(kVars), 0.5);
  healthy.send_raw(eval_frame(point));
  server_->poll_once(0);

  firehose.pump();
  int answered = 0;
  int shed = 0;
  while (auto frame = firehose.next_frame()) {
    if (frame->type == MessageType::kListModelsResponse) {
      ++answered;
    } else {
      const ErrorFrame error = parse_error(*frame);
      EXPECT_EQ(error.code, ErrorCode::kOverloaded);
      EXPECT_EQ(error.retry_after_ms, 17u);
      ++shed;
    }
  }
  EXPECT_EQ(answered, 2);
  EXPECT_EQ(shed, 4);
  EXPECT_FALSE(firehose.at_eof());  // shed is an answer, not a hangup

  healthy.pump();
  const std::optional<Frame> response = healthy.next_frame();
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, MessageType::kEvalResponse);
  WireReader in(response->payload, "healthy eval");
  EXPECT_TRUE(same_bits(in.real(), model_.predict(point)));

  // The budget is per poll cycle: the same client retrying next cycle — the
  // contract serve_client.py's backoff relies on — is served.
  firehose.send_raw(list_frame);
  server_->poll_once(0);
  firehose.pump();
  const std::optional<Frame> retry = firehose.next_frame();
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->type, MessageType::kListModelsResponse);

  EXPECT_EQ(server_->stats().requests_shed, 4u);
  EXPECT_EQ(server_->stats().requests_admitted, 4u);
  EXPECT_EQ(server_->stats().requests_served,
            server_->stats().requests_admitted +
                server_->stats().requests_shed);
}

// ---- Read deadline: a slow loris is quarantined, not tolerated. ----

TEST_F(ChaosTest, SlowLorisIsClosedWhileOthersComplete) {
  ServerOptions options;
  options.read_timeout_seconds = 0.05;
  start(std::move(options));

  PairClient loris;
  PairClient worker;
  loris.connect(*server_);
  worker.connect(*server_);

  const std::vector<Real> point(static_cast<std::size_t>(kVars), 0.25);
  const std::string frame = eval_frame(point);
  loris.send_raw(frame.substr(0, 5));  // header fragment, then silence
  server_->poll_once(0);               // ingest; read deadline arms
  server_->poll_once(70);              // sit past the 50 ms deadline
  server_->poll_once(0);               // enforce it

  // The worker connection is untouched before, during, and after.
  worker.send_raw(frame);
  server_->poll_once(0);
  worker.pump();
  const std::optional<Frame> response = worker.next_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, MessageType::kEvalResponse);

  loris.pump();
  const std::optional<Frame> verdict = loris.next_frame();
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(parse_error(*verdict).code, ErrorCode::kConnectionTimeout);
  EXPECT_TRUE(loris.at_eof());
  EXPECT_EQ(server_->stats().connections_timed_out, 1u);

  // Completing a frame re-arms the deadline: a steady client that simply
  // spans two cycles is not a loris.
  PairClient steady;
  steady.connect(*server_);
  steady.send_raw(frame.substr(0, 5));
  server_->poll_once(0);
  steady.send_raw(frame.substr(5));
  server_->poll_once(0);
  steady.pump();
  const std::optional<Frame> completed = steady.next_frame();
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(completed->type, MessageType::kEvalResponse);
  EXPECT_EQ(server_->stats().connections_timed_out, 1u);
}

// ---- Write deadline: a peer that stops reading cannot pin memory. ----

TEST_F(ChaosTest, StalledReaderIsClosedByWriteDeadline) {
  ServerOptions options;
  options.write_timeout_seconds = 0.05;
  start(std::move(options));

  PairClient stalled;
  PairClient worker;
  stalled.connect(*server_, /*server_sndbuf=*/1);
  worker.connect(*server_);

  // One eval_batch whose ~32 KiB response overflows the shrunken send
  // buffer; the request itself (~128 KiB) still fits the client's default
  // send buffer, so one blocking send cannot deadlock against the server.
  const Index rows = 4096;
  std::string payload;
  put_bytes(payload, "m");
  put_u32(payload, 0);
  put_u32(payload, static_cast<std::uint32_t>(rows));
  put_u32(payload, static_cast<std::uint32_t>(kVars));
  for (Index r = 0; r < rows; ++r)
    for (Index c = 0; c < kVars; ++c) put_real(payload, 0.125);
  stalled.send_raw(encode_frame(MessageType::kEvalBatchRequest, payload));

  // Cycle until the request is fully read, the partially flushed response
  // arms the write deadline, and the deadline (50 ms) expires — a hard
  // close with no courtesy frame (the peer is not reading anyway).
  for (int i = 0; i < 100 && server_->stats().connections_timed_out == 0; ++i)
    server_->poll_once(10);
  EXPECT_EQ(server_->stats().connections_timed_out, 1u);

  const std::vector<Real> point(static_cast<std::size_t>(kVars), 0.75);
  worker.send_raw(eval_frame(point));
  server_->poll_once(0);
  worker.pump();
  const std::optional<Frame> response = worker.next_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, MessageType::kEvalResponse);
}

// ---- Idle reaper. ----

TEST_F(ChaosTest, IdleConnectionsAreQuietlyReaped) {
  ServerOptions options;
  options.idle_timeout_seconds = 0.1;
  start(std::move(options));

  PairClient idle;
  PairClient active;
  idle.connect(*server_);
  active.connect(*server_);

  // Both idle clocks start at adoption. `active` speaks at ~60 ms —
  // re-arming its clock to ~160 ms — and the reaper loop below exits the
  // moment `idle` crosses 100 ms, well before `active` would.
  const std::vector<Real> point(static_cast<std::size_t>(kVars), 0.5);
  server_->poll_once(0);
  server_->poll_once(60);
  active.send_raw(eval_frame(point));
  server_->poll_once(0);
  for (int i = 0; i < 100 && server_->stats().idle_closed == 0; ++i)
    server_->poll_once(10);

  idle.pump();
  EXPECT_TRUE(idle.at_eof());
  EXPECT_EQ(server_->stats().idle_closed, 1u);

  active.pump();
  const std::optional<Frame> response = active.next_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, MessageType::kEvalResponse);
}

// ---- Hot reload. ----

TEST_F(ChaosTest, HotReloadDropsNoInFlightRequestAndSwapsVersions) {
  start(ServerOptions{});

  PairClient client;
  client.connect(*server_);

  // Serve latest once so the server tracks "m" (last-good = v1) — reload
  // only re-resolves names it has served.
  const std::vector<Real> point(static_cast<std::size_t>(kVars), 0.5);
  client.send_raw(eval_frame(point));
  server_->poll_once(0);
  client.pump();
  ASSERT_TRUE(client.next_frame().has_value());

  // Publish v2, then queue pinned-v1 evals ahead of the reload and a
  // latest eval behind it, all in one burst: every response must arrive,
  // in order, with the v1 -> v2 swap landing between them. (Pinned
  // requests, unlike latest requests, cannot pick v2 up lazily — the swap
  // observed here is the reload's.)
  ASSERT_EQ(registry_->save("m", model_), 2u);
  std::string wire;
  wire += eval_frame(point, 1);
  wire += eval_frame(point, 1);
  wire += encode_frame(MessageType::kReloadRequest, "");
  wire += eval_frame(point);
  client.send_raw(wire);
  server_->poll_once(0);
  client.pump();

  const Real expected = model_.predict(point);
  for (int i = 0; i < 2; ++i) {
    const std::optional<Frame> response = client.next_frame();
    ASSERT_TRUE(response.has_value()) << "pre-reload eval " << i;
    ASSERT_EQ(response->type, MessageType::kEvalResponse);
    WireReader in(response->payload, "pre-reload eval");
    EXPECT_TRUE(same_bits(in.real(), expected));
  }
  const std::optional<Frame> reload = client.next_frame();
  ASSERT_TRUE(reload.has_value());
  ASSERT_EQ(reload->type, MessageType::kReloadResponse);
  WireReader counts(reload->payload, "reload response");
  EXPECT_EQ(counts.u32(), 1u);  // reloaded
  EXPECT_EQ(counts.u32(), 0u);  // failed
  const std::optional<Frame> after = client.next_frame();
  ASSERT_TRUE(after.has_value()) << "eval after reload lost";
  ASSERT_EQ(after->type, MessageType::kEvalResponse);
  WireReader in(after->payload, "post-reload eval");
  EXPECT_TRUE(same_bits(in.real(), expected));  // same bytes, v2 == v1 here

  EXPECT_EQ(server_->stats().reloads, 1u);
  EXPECT_EQ(server_->stats().reload_failures, 0u);
  EXPECT_FALSE(client.at_eof());
}

TEST_F(ChaosTest, ReloadToCorruptVersionKeepsServingLastGood) {
  start(ServerOptions{});

  PairClient client;
  client.connect(*server_);

  // Serve once from v1 so the server has a last-good to fall back to.
  const std::vector<Real> point(static_cast<std::size_t>(kVars), 0.25);
  client.send_raw(eval_frame(point));
  server_->poll_once(0);
  client.pump();
  ASSERT_TRUE(client.next_frame().has_value());

  // Publish a corrupt v2, reload: the swap must fail closed.
  const std::uint32_t bad = registry_->save("m", model_);
  {
    std::ofstream corrupt(registry_->path_for("m", bad),
                          std::ios::binary | std::ios::trunc);
    corrupt << "garbage";
  }
  client.send_raw(encode_frame(MessageType::kReloadRequest, ""));
  server_->poll_once(0);
  client.pump();
  const std::optional<Frame> reload = client.next_frame();
  ASSERT_TRUE(reload.has_value());
  ASSERT_EQ(reload->type, MessageType::kReloadResponse);
  WireReader counts(reload->payload, "reload response");
  EXPECT_EQ(counts.u32(), 0u);  // reloaded
  EXPECT_EQ(counts.u32(), 1u);  // failed
  EXPECT_EQ(server_->stats().reload_failures, 1u);

  // Evals keep answering from v1, repeatedly, without re-reading the
  // corrupt file (the failure counter must not climb per request).
  const Real expected = model_.predict(point);
  for (int i = 0; i < 3; ++i) {
    client.send_raw(eval_frame(point));
    server_->poll_once(0);
    client.pump();
    const std::optional<Frame> response = client.next_frame();
    ASSERT_TRUE(response.has_value()) << "post-corruption eval " << i;
    ASSERT_EQ(response->type, MessageType::kEvalResponse);
    WireReader in(response->payload, "last-good eval");
    EXPECT_TRUE(same_bits(in.real(), expected));
  }
  EXPECT_EQ(server_->stats().reload_failures, 1u);
  EXPECT_FALSE(client.at_eof());
}

TEST_F(ChaosTest, FingerprintProbePicksUpNewVersionsWithoutARequest) {
  ServerOptions options;
  options.reload_probe_seconds = 0.02;
  start(std::move(options));

  PairClient client;
  client.connect(*server_);
  const std::vector<Real> point(static_cast<std::size_t>(kVars), 0.5);
  client.send_raw(eval_frame(point));
  server_->poll_once(0);
  client.pump();
  ASSERT_TRUE(client.next_frame().has_value());

  ASSERT_EQ(registry_->save("m", model_), 2u);
  for (int i = 0; i < 4 && server_->stats().reloads == 0; ++i)
    server_->poll_once(30);  // idle cycles; only the probe can see the save
  EXPECT_EQ(server_->stats().reloads, 1u);
  EXPECT_EQ(server_->stats().reload_failures, 0u);
}

// ---- The storm: an injector-scheduled mix of abuse, one invariant. ----

TEST_F(ChaosTest, InjectorScheduledStormLeavesServerConsistent) {
  ServerOptions options;
  options.read_timeout_seconds = 0.05;
  options.max_pending_per_connection = 1;
  start(std::move(options));

  SocketFaultInjector::Options schedule_options;
  schedule_options.fault_rate = 0.8;
  schedule_options.seed = 4242;
  SocketFaultInjector schedule(schedule_options);

  constexpr int kOps = 24;
  const std::vector<Real> point(static_cast<std::size_t>(kVars), 0.5);
  const std::string frame = eval_frame(point);

  std::vector<std::unique_ptr<PairClient>> clients;
  int expect_answered = 0;
  int expect_stalled = 0;
  for (int op = 0; op < kOps; ++op) {
    auto client = std::make_unique<PairClient>();
    client->connect(*server_);
    switch (schedule.kind(static_cast<std::uint64_t>(op))) {
      case SocketFaultKind::kNone:
        client->send_raw(frame);
        ++expect_answered;
        break;
      case SocketFaultKind::kTornWrite:
        // First half now, second half next cycle: must still be answered.
        client->send_raw(frame.substr(0, frame.size() / 2));
        server_->poll_once(0);
        client->send_raw(frame.substr(frame.size() / 2));
        ++expect_answered;
        break;
      case SocketFaultKind::kShortRead:
        // Sends fine, then reads almost nothing and hangs up: the server
        // must shrug — the response it flushed dies with the socket.
        client->send_raw(frame);
        server_->poll_once(0);
        client->close();
        break;
      case SocketFaultKind::kStalledPeer:
        client->send_raw(frame.substr(0, 5));
        ++expect_stalled;
        break;
      case SocketFaultKind::kMidFrameDisconnect:
        client->send_raw(frame.substr(0, 5));
        client->close();
        break;
    }
    clients.push_back(std::move(client));
  }
  ASSERT_GT(expect_answered, 0) << "seed produced no clean ops; pick another";
  ASSERT_GT(expect_stalled, 0) << "seed produced no stalled peer";

  // Settle: closed peers are reaped as their EOFs surface (those POLLHUP
  // events make fixed-length poll sleeps return early, so loop on the
  // counter instead) and stalled peers cross the 50 ms read deadline.
  server_->poll_once(0);
  for (int i = 0; i < 100 && server_->stats().connections_timed_out <
                                 static_cast<std::uint64_t>(expect_stalled);
       ++i)
    server_->poll_once(10);

  int answered = 0;
  for (int op = 0; op < kOps; ++op) {
    PairClient& client = *clients[static_cast<std::size_t>(op)];
    if (client.fd() < 0) continue;
    client.pump();
    while (auto response = client.next_frame())
      if (response->type == MessageType::kEvalResponse) ++answered;
  }
  EXPECT_EQ(answered, expect_answered);
  EXPECT_EQ(server_->stats().connections_timed_out,
            static_cast<std::uint64_t>(expect_stalled));
  EXPECT_EQ(server_->stats().requests_served,
            server_->stats().requests_admitted +
                server_->stats().requests_shed);

  // After the storm, a fresh connection gets a clean, correct answer.
  PairClient survivor;
  survivor.connect(*server_);
  survivor.send_raw(frame);
  server_->poll_once(0);
  survivor.pump();
  const std::optional<Frame> response = survivor.next_frame();
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, MessageType::kEvalResponse);
  WireReader in(response->payload, "survivor eval");
  EXPECT_TRUE(same_bits(in.real(), model_.predict(point)));
}

}  // namespace
}  // namespace rsm::serve
