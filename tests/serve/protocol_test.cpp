// Framing contract: frames survive arbitrary fragmentation and
// concatenation, and every structural violation — bad magic, oversized
// payload, checksum mismatch — is a ProtocolError before any payload byte
// is interpreted.
#include "serve/protocol.hpp"

#include <cstring>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "util/errors.hpp"

namespace rsm::serve {
namespace {

TEST(Protocol, RoundTripAndBufferConsumption) {
  std::string buffer =
      encode_frame(MessageType::kEvalRequest, "payload-bytes");
  const std::optional<Frame> frame = try_extract_frame(buffer);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MessageType::kEvalRequest);
  EXPECT_EQ(frame->payload, "payload-bytes");
  EXPECT_TRUE(buffer.empty());
}

TEST(Protocol, EmptyPayloadRoundTrips) {
  std::string buffer = encode_frame(MessageType::kListModelsRequest, "");
  const std::optional<Frame> frame = try_extract_frame(buffer);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(Protocol, SurvivesBytewiseFragmentation) {
  const std::string wire =
      encode_frame(MessageType::kYieldRequest, "fragmented");
  std::string buffer;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    buffer += wire[i];
    EXPECT_FALSE(try_extract_frame(buffer).has_value())
        << "frame extracted " << (wire.size() - 1 - i) << " bytes early";
  }
  buffer += wire.back();
  const std::optional<Frame> frame = try_extract_frame(buffer);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, "fragmented");
}

TEST(Protocol, ExtractsConcatenatedFramesInOrder) {
  std::string buffer = encode_frame(MessageType::kEvalRequest, "one") +
                       encode_frame(MessageType::kEvalBatchRequest, "two");
  const std::optional<Frame> first = try_extract_frame(buffer);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->payload, "one");
  const std::optional<Frame> second = try_extract_frame(buffer);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MessageType::kEvalBatchRequest);
  EXPECT_EQ(second->payload, "two");
  EXPECT_FALSE(try_extract_frame(buffer).has_value());
}

TEST(Protocol, BadMagicIsProtocolError) {
  std::string buffer = encode_frame(MessageType::kEvalRequest, "x");
  buffer[0] = 'Z';
  EXPECT_THROW((void)try_extract_frame(buffer), ProtocolError);
}

TEST(Protocol, CrcMismatchIsProtocolError) {
  std::string buffer = encode_frame(MessageType::kEvalRequest, "checksum-me");
  buffer[buffer.size() / 2] =
      static_cast<char>(static_cast<unsigned char>(buffer[buffer.size() / 2]) ^
                        0x01);
  EXPECT_THROW((void)try_extract_frame(buffer), ProtocolError);
}

TEST(Protocol, OversizedPayloadRejectedFromHeaderAlone) {
  // Only the 9-byte header is present; the declared length alone must
  // trigger rejection — a server that waited for the bytes could be made
  // to buffer 4 GiB per connection.
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::string buffer(kFrameHeaderBytes, '\0');
  std::memcpy(buffer.data(), &magic, 4);
  buffer[4] = static_cast<char>(MessageType::kEvalRequest);
  std::memcpy(buffer.data() + 5, &huge, 4);
  try {
    (void)try_extract_frame(buffer);
    FAIL() << "oversized declared payload accepted";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kProtocolError);
  }
}

TEST(Protocol, PartialHeaderIsIncompleteNotError) {
  std::string buffer = encode_frame(MessageType::kEvalRequest, "x");
  buffer.resize(kFrameHeaderBytes - 1);
  EXPECT_FALSE(try_extract_frame(buffer).has_value());
  EXPECT_EQ(buffer.size(), kFrameHeaderBytes - 1);  // nothing consumed
}

}  // namespace
}  // namespace rsm::serve
