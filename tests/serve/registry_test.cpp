// Registry contract: versions only grow, loads reproduce saves bit for bit,
// names cannot escape the root, and every way the disk can lie — torn
// write, truncation, bit rot, wrong generation — surfaces as a structured
// error instead of a wrong model.
#include "serve/registry.hpp"

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/model_codec.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace rsm::serve {
namespace {

bool same_bits(Real a, Real b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::string fresh_root(const std::string& name) {
  const std::string root = ::testing::TempDir() + "rsm_registry_" + name;
  std::filesystem::remove_all(root);
  return root;
}

SparseModel make_model(Index n, std::uint64_t seed) {
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  Rng rng(seed);
  std::vector<ModelTerm> terms;
  for (Index m = 0; m < dict->size(); m += 2)
    terms.push_back({m, rng.normal()});
  return SparseModel(dict, std::move(terms));
}

TEST(ModelRegistry, SaveAssignsIncreasingVersionsAndLoadsLatest) {
  ModelRegistry registry(fresh_root("versions"));
  const SparseModel v1 = make_model(3, 1);
  const SparseModel v2 = make_model(3, 2);
  EXPECT_EQ(registry.latest_version("m"), 0u);
  EXPECT_EQ(registry.save("m", v1), 1u);
  EXPECT_EQ(registry.save("m", v2), 2u);
  EXPECT_EQ(registry.latest_version("m"), 2u);

  // Version 0 = latest; explicit versions stay addressable forever.
  EXPECT_EQ(registry.load("m").num_terms(), v2.num_terms());
  EXPECT_TRUE(same_bits(registry.load("m", 1).terms()[0].coefficient,
                        v1.terms()[0].coefficient));
  EXPECT_TRUE(same_bits(registry.load("m", 2).terms()[0].coefficient,
                        v2.terms()[0].coefficient));
}

TEST(ModelRegistry, RoundTripBitIdenticalOverThousandProbes) {
  ModelRegistry registry(fresh_root("roundtrip"));
  const Index n = 6;
  const SparseModel model = make_model(n, 44);
  registry.save("sram_delay", model);
  const SparseModel loaded = registry.load("sram_delay");

  Rng rng(7);
  const Matrix probes = monte_carlo_normal(1000, n, rng);
  for (Index r = 0; r < probes.rows(); ++r) {
    ASSERT_TRUE(same_bits(loaded.predict(probes.row(r)),
                          model.predict(probes.row(r))))
        << "predict diverged at probe " << r;
    const std::vector<Real> ga = model.gradient(probes.row(r));
    const std::vector<Real> gb = loaded.gradient(probes.row(r));
    for (std::size_t j = 0; j < ga.size(); ++j)
      ASSERT_TRUE(same_bits(ga[j], gb[j]))
          << "gradient diverged at probe " << r << " var " << j;
  }
}

TEST(ModelRegistry, ListReportsEveryVersionSorted) {
  ModelRegistry registry(fresh_root("list"));
  registry.save("beta", make_model(2, 1));
  registry.save("alpha", make_model(3, 2));
  registry.save("alpha", make_model(3, 3));

  const std::vector<ModelRecord> records = registry.list();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "alpha");
  EXPECT_EQ(records[0].version, 1u);
  EXPECT_EQ(records[1].name, "alpha");
  EXPECT_EQ(records[1].version, 2u);
  EXPECT_EQ(records[2].name, "beta");
  EXPECT_EQ(records[2].version, 1u);
  EXPECT_EQ(records[0].num_variables, 3);
  EXPECT_GT(records[0].num_terms, 0);
  EXPECT_GT(records[0].size_bytes, 0u);
}

TEST(ModelRegistry, ForeignFilesInRootAreIgnored) {
  const std::string root = fresh_root("foreign");
  ModelRegistry registry(root);
  registry.save("m", make_model(2, 1));
  std::ofstream(root + "/README.txt") << "not a model";
  std::ofstream(root + "/m.vNaN.model") << "not a model either";
  EXPECT_EQ(registry.list().size(), 1u);
  EXPECT_EQ(registry.latest_version("m"), 1u);
}

TEST(ModelRegistry, NamesCannotEscapeTheRoot) {
  ModelRegistry registry(fresh_root("names"));
  const SparseModel model = make_model(2, 1);
  EXPECT_THROW(registry.save("", model), IoError);
  EXPECT_THROW(registry.save("a/b", model), IoError);
  EXPECT_THROW(registry.save("../escape", model), IoError);
  EXPECT_THROW(registry.save(".hidden", model), IoError);
  EXPECT_THROW(registry.save("sp ace", model), IoError);
  EXPECT_EQ(registry.save("ok-name_1.2", model), 1u);
}

TEST(ModelRegistry, MissingNameOrVersionIsIoError) {
  ModelRegistry registry(fresh_root("missing"));
  EXPECT_THROW((void)registry.load("absent"), IoError);
  registry.save("m", make_model(2, 1));
  EXPECT_THROW((void)registry.load("m", 9), IoError);
}

TEST(ModelRegistry, FingerprintPinRejectsWrongGeneration) {
  ModelRegistry registry(fresh_root("pin"));
  const SparseModel model = make_model(3, 1);
  registry.save("m", model);
  const std::uint64_t fp = dictionary_fingerprint(model.dictionary());
  EXPECT_EQ(registry.load("m", 0, fp).num_terms(), model.num_terms());
  EXPECT_THROW((void)registry.load("m", 0, fp ^ 1u), VersionMismatchError);
}

TEST(ModelRegistry, TruncatedArtifactFailsClosed) {
  ModelRegistry registry(fresh_root("truncate"));
  registry.save("m", make_model(3, 1));
  const std::string path = registry.path_for("m", 1);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW((void)registry.load("m"), IoError);
  EXPECT_THROW((void)registry.list(), IoError);
}

TEST(ModelRegistry, BitRotFailsClosed) {
  ModelRegistry registry(fresh_root("bitrot"));
  registry.save("m", make_model(3, 1));
  const std::string path = registry.path_for("m", 1);
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  file.seekp(size / 2);
  char byte = 0;
  file.seekg(size / 2);
  file.read(&byte, 1);
  file.seekp(size / 2);
  byte = static_cast<char>(static_cast<unsigned char>(byte) ^ 0x10);
  file.write(&byte, 1);
  file.close();
  EXPECT_THROW((void)registry.load("m"), IoError);
}

TEST(ModelRegistry, InjectedWriteFaultsFailClosedAndLeaveNoPartial) {
  const std::string root = fresh_root("faults");
  const FsFaultInjector faults({.fault_rate = 1.0, .seed = 99});
  ModelRegistry registry(root, &faults);
  EXPECT_THROW(registry.save("m", make_model(3, 1)), IoError);
  // atomic_write_file's rename never happened: no artifact, no version.
  EXPECT_EQ(registry.latest_version("m"), 0u);
  EXPECT_TRUE(registry.list().empty());

  // The same root recovers once the storage heals.
  ModelRegistry recovered(root);
  EXPECT_EQ(recovered.save("m", make_model(3, 1)), 1u);
  EXPECT_EQ(recovered.load("m").dictionary().num_variables(), 3);
}

TEST(ModelRegistry, StateFingerprintTracksPublishesOnly) {
  const std::string root = fresh_root("fingerprint");
  ModelRegistry registry(root);
  const std::uint64_t empty = registry.state_fingerprint();
  registry.save("m", make_model(3, 1));
  const std::uint64_t one = registry.state_fingerprint();
  EXPECT_NE(one, empty);

  // Reads do not move it; a second handle over the same root agrees — the
  // probe a server runs sees exactly what another process published.
  (void)registry.load("m");
  EXPECT_EQ(registry.state_fingerprint(), one);
  EXPECT_EQ(ModelRegistry(root).state_fingerprint(), one);

  registry.save("m", make_model(3, 2));
  const std::uint64_t two = registry.state_fingerprint();
  EXPECT_NE(two, one);
  std::filesystem::remove(registry.path_for("m", 2));
  EXPECT_EQ(registry.state_fingerprint(), one);
}

TEST(ModelRegistry, FailedSaveMovesNeitherStateNorFingerprint) {
  const std::string root = fresh_root("failedsave");
  ModelRegistry healthy(root);
  healthy.save("m", make_model(3, 1));
  const std::uint64_t before = healthy.state_fingerprint();

  // Disk full mid-publish: the save throws, but the registry still holds
  // exactly v1 and the fingerprint is unchanged — a server probing it has
  // nothing to reload, so it keeps serving the last-good version.
  const FsFaultInjector faults({.fault_rate = 1.0, .seed = 7});
  ModelRegistry flaky(root, &faults);
  EXPECT_THROW(flaky.save("m", make_model(3, 2)), IoError);
  EXPECT_EQ(healthy.latest_version("m"), 1u);
  EXPECT_EQ(healthy.state_fingerprint(), before);
  EXPECT_EQ(healthy.load("m").dictionary().num_variables(), 3);
}

TEST(ModelRegistry, ConcurrentSavesNeverLeakThroughAFingerprintPin) {
  const std::string root = fresh_root("race");
  ModelRegistry registry(root);
  const SparseModel generation_a = make_model(3, 1);
  const SparseModel generation_b = make_model(4, 2);  // different dictionary
  const std::uint64_t pin = dictionary_fingerprint(generation_a.dictionary());
  ASSERT_NE(pin, dictionary_fingerprint(generation_b.dictionary()));
  registry.save("m", generation_a);

  // One thread publishes generation-B versions while another hammers
  // pinned loads of latest: every load must either return generation A or
  // fail as VersionMismatchError — never silently hand back a B model.
  // (atomic_write_file makes each version's rename the commit point, so a
  // loader can also never see a half-written artifact as IoError here.)
  ThreadPool pool(ThreadPool::Options{.num_threads = 2});
  std::atomic<int> matched{0};
  std::atomic<int> rejected{0};
  pool.submit([&] {
    for (int i = 0; i < 20; ++i) registry.save("m", generation_b);
  });
  pool.submit([&] {
    for (int i = 0; i < 200; ++i) {
      try {
        const SparseModel loaded = registry.load("m", 0, pin);
        EXPECT_EQ(dictionary_fingerprint(loaded.dictionary()), pin);
        matched.fetch_add(1);
      } catch (const VersionMismatchError&) {
        rejected.fetch_add(1);
      }
    }
  });
  pool.wait_idle();
  EXPECT_EQ(matched.load() + rejected.load(), 200);
  // The publisher finished, so by the end the pin must be rejecting.
  EXPECT_THROW((void)registry.load("m", 0, pin), VersionMismatchError);
  EXPECT_EQ(registry.latest_version("m"), 21u);
}

}  // namespace
}  // namespace rsm::serve
