// Registry contract: versions only grow, loads reproduce saves bit for bit,
// names cannot escape the root, and every way the disk can lie — torn
// write, truncation, bit rot, wrong generation — surfaces as a structured
// error instead of a wrong model.
#include "serve/registry.hpp"

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/model_codec.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace rsm::serve {
namespace {

bool same_bits(Real a, Real b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::string fresh_root(const std::string& name) {
  const std::string root = ::testing::TempDir() + "rsm_registry_" + name;
  std::filesystem::remove_all(root);
  return root;
}

SparseModel make_model(Index n, std::uint64_t seed) {
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  Rng rng(seed);
  std::vector<ModelTerm> terms;
  for (Index m = 0; m < dict->size(); m += 2)
    terms.push_back({m, rng.normal()});
  return SparseModel(dict, std::move(terms));
}

TEST(ModelRegistry, SaveAssignsIncreasingVersionsAndLoadsLatest) {
  ModelRegistry registry(fresh_root("versions"));
  const SparseModel v1 = make_model(3, 1);
  const SparseModel v2 = make_model(3, 2);
  EXPECT_EQ(registry.latest_version("m"), 0u);
  EXPECT_EQ(registry.save("m", v1), 1u);
  EXPECT_EQ(registry.save("m", v2), 2u);
  EXPECT_EQ(registry.latest_version("m"), 2u);

  // Version 0 = latest; explicit versions stay addressable forever.
  EXPECT_EQ(registry.load("m").num_terms(), v2.num_terms());
  EXPECT_TRUE(same_bits(registry.load("m", 1).terms()[0].coefficient,
                        v1.terms()[0].coefficient));
  EXPECT_TRUE(same_bits(registry.load("m", 2).terms()[0].coefficient,
                        v2.terms()[0].coefficient));
}

TEST(ModelRegistry, RoundTripBitIdenticalOverThousandProbes) {
  ModelRegistry registry(fresh_root("roundtrip"));
  const Index n = 6;
  const SparseModel model = make_model(n, 44);
  registry.save("sram_delay", model);
  const SparseModel loaded = registry.load("sram_delay");

  Rng rng(7);
  const Matrix probes = monte_carlo_normal(1000, n, rng);
  for (Index r = 0; r < probes.rows(); ++r) {
    ASSERT_TRUE(same_bits(loaded.predict(probes.row(r)),
                          model.predict(probes.row(r))))
        << "predict diverged at probe " << r;
    const std::vector<Real> ga = model.gradient(probes.row(r));
    const std::vector<Real> gb = loaded.gradient(probes.row(r));
    for (std::size_t j = 0; j < ga.size(); ++j)
      ASSERT_TRUE(same_bits(ga[j], gb[j]))
          << "gradient diverged at probe " << r << " var " << j;
  }
}

TEST(ModelRegistry, ListReportsEveryVersionSorted) {
  ModelRegistry registry(fresh_root("list"));
  registry.save("beta", make_model(2, 1));
  registry.save("alpha", make_model(3, 2));
  registry.save("alpha", make_model(3, 3));

  const std::vector<ModelRecord> records = registry.list();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "alpha");
  EXPECT_EQ(records[0].version, 1u);
  EXPECT_EQ(records[1].name, "alpha");
  EXPECT_EQ(records[1].version, 2u);
  EXPECT_EQ(records[2].name, "beta");
  EXPECT_EQ(records[2].version, 1u);
  EXPECT_EQ(records[0].num_variables, 3);
  EXPECT_GT(records[0].num_terms, 0);
  EXPECT_GT(records[0].size_bytes, 0u);
}

TEST(ModelRegistry, ForeignFilesInRootAreIgnored) {
  const std::string root = fresh_root("foreign");
  ModelRegistry registry(root);
  registry.save("m", make_model(2, 1));
  std::ofstream(root + "/README.txt") << "not a model";
  std::ofstream(root + "/m.vNaN.model") << "not a model either";
  EXPECT_EQ(registry.list().size(), 1u);
  EXPECT_EQ(registry.latest_version("m"), 1u);
}

TEST(ModelRegistry, NamesCannotEscapeTheRoot) {
  ModelRegistry registry(fresh_root("names"));
  const SparseModel model = make_model(2, 1);
  EXPECT_THROW(registry.save("", model), IoError);
  EXPECT_THROW(registry.save("a/b", model), IoError);
  EXPECT_THROW(registry.save("../escape", model), IoError);
  EXPECT_THROW(registry.save(".hidden", model), IoError);
  EXPECT_THROW(registry.save("sp ace", model), IoError);
  EXPECT_EQ(registry.save("ok-name_1.2", model), 1u);
}

TEST(ModelRegistry, MissingNameOrVersionIsIoError) {
  ModelRegistry registry(fresh_root("missing"));
  EXPECT_THROW((void)registry.load("absent"), IoError);
  registry.save("m", make_model(2, 1));
  EXPECT_THROW((void)registry.load("m", 9), IoError);
}

TEST(ModelRegistry, FingerprintPinRejectsWrongGeneration) {
  ModelRegistry registry(fresh_root("pin"));
  const SparseModel model = make_model(3, 1);
  registry.save("m", model);
  const std::uint64_t fp = dictionary_fingerprint(model.dictionary());
  EXPECT_EQ(registry.load("m", 0, fp).num_terms(), model.num_terms());
  EXPECT_THROW((void)registry.load("m", 0, fp ^ 1u), VersionMismatchError);
}

TEST(ModelRegistry, TruncatedArtifactFailsClosed) {
  ModelRegistry registry(fresh_root("truncate"));
  registry.save("m", make_model(3, 1));
  const std::string path = registry.path_for("m", 1);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW((void)registry.load("m"), IoError);
  EXPECT_THROW((void)registry.list(), IoError);
}

TEST(ModelRegistry, BitRotFailsClosed) {
  ModelRegistry registry(fresh_root("bitrot"));
  registry.save("m", make_model(3, 1));
  const std::string path = registry.path_for("m", 1);
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  file.seekp(size / 2);
  char byte = 0;
  file.seekg(size / 2);
  file.read(&byte, 1);
  file.seekp(size / 2);
  byte = static_cast<char>(static_cast<unsigned char>(byte) ^ 0x10);
  file.write(&byte, 1);
  file.close();
  EXPECT_THROW((void)registry.load("m"), IoError);
}

TEST(ModelRegistry, InjectedWriteFaultsFailClosedAndLeaveNoPartial) {
  const std::string root = fresh_root("faults");
  const FsFaultInjector faults({.fault_rate = 1.0, .seed = 99});
  ModelRegistry registry(root, &faults);
  EXPECT_THROW(registry.save("m", make_model(3, 1)), IoError);
  // atomic_write_file's rename never happened: no artifact, no version.
  EXPECT_EQ(registry.latest_version("m"), 0u);
  EXPECT_TRUE(registry.list().empty());

  // The same root recovers once the storage heals.
  ModelRegistry recovered(root);
  EXPECT_EQ(recovered.save("m", make_model(3, 1)), 1u);
  EXPECT_EQ(recovered.load("m").dictionary().num_variables(), 3);
}

}  // namespace
}  // namespace rsm::serve
