// End-to-end serving contract, exercised through a real AF_UNIX socket: a
// served eval is bit-identical to calling the model in-process, bad
// requests earn structured error frames without killing the connection,
// framing corruption kills exactly one connection, and cancellation drains
// — every buffered request is answered before the socket closes.
#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/yield.hpp"
#include "serve/model_codec.hpp"
#include "serve/wire.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/errors.hpp"
#include "util/thread_pool.hpp"

namespace rsm::serve {
namespace {

bool same_bits(Real a, Real b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Minimal blocking client speaking the frame protocol over AF_UNIX.
class TestClient {
 public:
  explicit TestClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    RSM_CHECK_MSG(fd_ >= 0, "test client socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    RSM_CHECK_MSG(path.size() < sizeof(addr.sun_path), "socket path too long");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    RSM_CHECK_MSG(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr)) == 0,
                  "test client connect() failed");
  }
  ~TestClient() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_raw(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
      ASSERT_GT(n, 0) << "send failed";
      sent += static_cast<std::size_t>(n);
    }
  }

  void send_frame(MessageType type, const std::string& payload) {
    send_raw(encode_frame(type, payload));
  }

  /// Blocks until one full frame arrives; nullopt on clean EOF.
  std::optional<Frame> recv_frame() {
    while (true) {
      if (std::optional<Frame> frame = try_extract_frame(buffer_))
        return frame;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the peer has closed and no byte remains buffered.
  bool at_eof() {
    if (!buffer_.empty()) return false;
    char byte = 0;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct ErrorFrame {
  ErrorCode code;
  std::string message;
};

ErrorFrame parse_error(const Frame& frame) {
  EXPECT_EQ(frame.type, MessageType::kErrorResponse);
  WireReader in(frame.payload, "test error frame");
  const auto code = static_cast<ErrorCode>(in.u8());
  return {code, std::string(in.bytes())};
}

class ServerTest : public ::testing::Test {
 protected:
  static constexpr Index kVars = 4;

  void SetUp() override {
    // Per-test root: ctest runs each TEST_F in its own parallel process, so
    // a shared path would let tests unlink each other's sockets.
    root_ = ::testing::TempDir() + "rsm_server_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    auto dict =
        std::make_shared<BasisDictionary>(BasisDictionary::quadratic(kVars));
    Rng rng(5);
    std::vector<ModelTerm> terms;
    for (Index m = 0; m < dict->size(); m += 2)
      terms.push_back({m, rng.normal()});
    model_ = SparseModel(dict, std::move(terms));
    ModelRegistry registry(root_ + "/registry");
    registry.save("m", model_);

    ServerOptions options;
    options.socket_path = root_ + "/server.sock";
    options.registry_root = root_ + "/registry";
    options.num_threads = 2;
    options.batch_chunk = 8;  // small, so modest batches exercise the pool
    options.cancel = cancel_.token();
    options.poll_interval_seconds = 0.01;
    server_ = std::make_unique<ModelServer>(std::move(options));
    // The listener is bound by the constructor, so the client below cannot
    // race it; run() executes on the repo's pool abstraction.
    runner_.submit([this] { server_->run(); });
  }

  void TearDown() override {
    cancel_.request_cancel();
    runner_.wait_idle();
    server_.reset();
  }

  [[nodiscard]] std::string socket_path() const {
    return root_ + "/server.sock";
  }

  [[nodiscard]] static std::string eval_payload(std::span<const Real> point) {
    std::string payload;
    put_bytes(payload, "m");
    put_u32(payload, 0);  // version 0 = latest
    put_u32(payload, static_cast<std::uint32_t>(point.size()));
    for (const Real x : point) put_real(payload, x);
    return payload;
  }

  std::string root_;
  SparseModel model_;
  CancellationSource cancel_;
  ThreadPool runner_{ThreadPool::Options{.num_threads = 1}};
  std::unique_ptr<ModelServer> server_;
};

TEST_F(ServerTest, EvalIsBitIdenticalToInProcessPredict) {
  TestClient client(socket_path());
  Rng rng(31);
  const Matrix points = monte_carlo_normal(20, kVars, rng);
  for (Index r = 0; r < points.rows(); ++r) {
    client.send_frame(MessageType::kEvalRequest, eval_payload(points.row(r)));
    const std::optional<Frame> response = client.recv_frame();
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->type, MessageType::kEvalResponse);
    WireReader in(response->payload, "eval response");
    ASSERT_TRUE(same_bits(in.real(), model_.predict(points.row(r))));
  }
}

TEST_F(ServerTest, EvalBatchSplitsAcrossPoolAndMatchesBitwise) {
  TestClient client(socket_path());
  Rng rng(37);
  const Index rows = 50;  // > batch_chunk (8): forces the pooled split path
  const Matrix points = monte_carlo_normal(rows, kVars, rng);
  std::string payload;
  put_bytes(payload, "m");
  put_u32(payload, 0);
  put_u32(payload, static_cast<std::uint32_t>(rows));
  put_u32(payload, static_cast<std::uint32_t>(kVars));
  for (Index r = 0; r < rows; ++r)
    for (Index c = 0; c < kVars; ++c) put_real(payload, points(r, c));
  client.send_frame(MessageType::kEvalBatchRequest, payload);

  const std::optional<Frame> response = client.recv_frame();
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, MessageType::kEvalBatchResponse);
  WireReader in(response->payload, "eval_batch response");
  ASSERT_EQ(in.u32(), static_cast<std::uint32_t>(rows));
  std::vector<Real> expected(static_cast<std::size_t>(rows));
  model_.predict_batch(points, expected);
  for (Index r = 0; r < rows; ++r)
    ASSERT_TRUE(same_bits(in.real(), expected[static_cast<std::size_t>(r)]))
        << "row " << r;
}

TEST_F(ServerTest, YieldMatchesInProcessEstimate) {
  TestClient client(socket_path());
  std::string payload;
  put_bytes(payload, "m");
  put_u32(payload, 0);
  put_real(payload, -1e30);
  put_real(payload, 1.0);
  put_u64(payload, 5000);
  put_u64(payload, 77);
  client.send_frame(MessageType::kYieldRequest, payload);

  const std::optional<Frame> response = client.recv_frame();
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, MessageType::kYieldResponse);
  WireReader in(response->payload, "yield response");

  Specification spec;
  spec.lower = -1e30;
  spec.upper = 1.0;
  Rng rng(77);
  const YieldResult local = estimate_yield(model_, spec, 5000, rng);
  EXPECT_TRUE(same_bits(in.real(), local.yield));
  EXPECT_TRUE(same_bits(in.real(), local.standard_error));
  EXPECT_EQ(in.u64(), static_cast<std::uint64_t>(local.num_samples));
  EXPECT_EQ(in.u64(), static_cast<std::uint64_t>(local.num_failures));
}

TEST_F(ServerTest, BadRequestsEarnStructuredErrorsAndConnectionSurvives) {
  TestClient client(socket_path());

  // Unknown model: io-error.
  std::string payload;
  put_bytes(payload, "ghost");
  put_u32(payload, 0);
  put_u32(payload, 1);
  put_real(payload, 0.0);
  client.send_frame(MessageType::kEvalRequest, payload);
  std::optional<Frame> response = client.recv_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(parse_error(*response).code, ErrorCode::kIoError);

  // Dimension mismatch: protocol-error (well-framed, semantically wrong).
  std::vector<Real> short_point(static_cast<std::size_t>(kVars - 1), 0.0);
  client.send_frame(MessageType::kEvalRequest, eval_payload(short_point));
  response = client.recv_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(parse_error(*response).code, ErrorCode::kProtocolError);

  // Truncated payload: protocol-error, still alive.
  client.send_frame(MessageType::kEvalRequest, "\x01");
  response = client.recv_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(parse_error(*response).code, ErrorCode::kProtocolError);

  // Unknown message type: protocol-error, still alive.
  client.send_frame(static_cast<MessageType>(0x33), "");
  response = client.recv_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(parse_error(*response).code, ErrorCode::kProtocolError);

  // The connection survived all four: a valid request still answers.
  const std::vector<Real> point(static_cast<std::size_t>(kVars), 0.25);
  client.send_frame(MessageType::kEvalRequest, eval_payload(point));
  response = client.recv_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, MessageType::kEvalResponse);
}

TEST_F(ServerTest, FramingCorruptionClosesOnlyThatConnection) {
  TestClient victim(socket_path());
  std::string wire = encode_frame(MessageType::kListModelsRequest, "");
  wire.back() = static_cast<char>(static_cast<unsigned char>(wire.back()) ^ 1);
  victim.send_raw(wire);
  const std::optional<Frame> response = victim.recv_frame();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(parse_error(*response).code, ErrorCode::kProtocolError);
  EXPECT_TRUE(victim.at_eof());  // stream desynced: server hung up

  // An uninvolved connection is unaffected.
  TestClient bystander(socket_path());
  bystander.send_frame(MessageType::kListModelsRequest, "");
  const std::optional<Frame> listing = bystander.recv_frame();
  ASSERT_TRUE(listing.has_value());
  EXPECT_EQ(listing->type, MessageType::kListModelsResponse);
  WireReader in(listing->payload, "list response");
  EXPECT_EQ(in.u32(), 1u);
}

TEST_F(ServerTest, CancellationDrainsEveryBufferedRequest) {
  TestClient client(socket_path());
  const Index kRequests = 25;
  const std::vector<Real> point(static_cast<std::size_t>(kVars), 0.5);
  std::string burst;
  for (Index i = 0; i < kRequests; ++i)
    burst += encode_frame(MessageType::kEvalRequest, eval_payload(point));
  client.send_raw(burst);
  cancel_.request_cancel();  // race the burst: drain must still answer all

  const Real expected = model_.predict(point);
  for (Index i = 0; i < kRequests; ++i) {
    const std::optional<Frame> response = client.recv_frame();
    ASSERT_TRUE(response.has_value()) << "response " << i << " lost in drain";
    ASSERT_EQ(response->type, MessageType::kEvalResponse);
    WireReader in(response->payload, "drained eval");
    ASSERT_TRUE(same_bits(in.real(), expected));
  }
  EXPECT_TRUE(client.at_eof());

  runner_.wait_idle();
  EXPECT_GE(server_->stats().requests_served,
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(server_->stats().evals, static_cast<std::uint64_t>(kRequests));
  // The socket file is gone once the server object is destroyed.
  server_.reset();
  EXPECT_FALSE(std::filesystem::exists(socket_path()));
}

}  // namespace
}  // namespace rsm::serve
