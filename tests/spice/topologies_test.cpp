// Analog building-block sanity on the MNA engine: topologies with known
// small-signal answers, checked against the simulator's DC + AC results.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/netlist.hpp"

namespace rsm::spice {
namespace {

MosfetParams nmos(Real w, Real l) {
  MosfetParams p;
  p.vt0 = 0.4;
  p.kp = 200e-6;
  p.lambda = 0.1;
  p.w = w;
  p.l = l;
  return p;
}

std::string ladder_node(int i) {
  std::string name("n");
  name += std::to_string(i);
  return name;
}

TEST(Topologies, SourceFollowerGainJustBelowUnity) {
  // NMOS source follower onto a current sink: Av = gm*Rs' / (1 + gm*Rs')
  // with ideal sink -> close to 1 (no body effect in the level-1 model).
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource(vdd, kGround, 1.2);
  n.add_vsource(in, kGround, 0.9, /*ac=*/1.0);
  n.add_mosfet(vdd, in, out, kGround, nmos(20e-6, 0.24e-6));
  n.add_isource(out, kGround, 100e-6);  // pull 100 uA out of the source
  const DcSolution op = solve_dc(n);
  // DC level shifted down by ~VGS.
  EXPECT_LT(op.voltage(out), 0.9 - 0.3);
  const std::vector<Phasor> ac = solve_ac(n, op, 1e3);
  const Real gain = std::abs(ac_voltage(ac, out));
  EXPECT_GT(gain, 0.93);
  EXPECT_LT(gain, 1.0);
}

TEST(Topologies, DifferentialPairGainMatchesGmRo) {
  // NMOS diff pair with ideal tail and resistive loads: differential gain
  // = gm * (R || ro) per side.
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId inp = n.node("inp");
  const NodeId inn = n.node("inn");
  const NodeId outp = n.node("outp");
  const NodeId outn = n.node("outn");
  const NodeId tail = n.node("tail");
  n.add_vsource(vdd, kGround, 1.5);
  n.add_vsource(inp, kGround, 0.8, 0.5);
  n.add_vsource(inn, kGround, 0.8, -0.5);
  const MosfetParams pair = nmos(10e-6, 0.5e-6);
  n.add_mosfet(outn, inp, tail, kGround, pair);
  n.add_mosfet(outp, inn, tail, kGround, pair);
  n.add_isource(tail, kGround, 200e-6);
  n.add_resistor(vdd, outn, 4e3);
  n.add_resistor(vdd, outp, 4e3);

  const DcSolution op = solve_dc(n);
  // Balanced: both sides carry 100 uA.
  EXPECT_NEAR(op.voltage(outp), op.voltage(outn), 1e-6);

  const MosfetEval e = evaluate_nmos_convention(
      pair, 0.8 - op.voltage(tail), op.voltage(outn) - op.voltage(tail));
  const Real r_eff = 1.0 / (1.0 / 4e3 + e.gds);
  const std::vector<Phasor> ac = solve_ac(n, op, 1e3);
  const Real vdiff = std::abs(ac_voltage(ac, outp) - ac_voltage(ac, outn));
  EXPECT_NEAR(vdiff, e.gm * r_eff, 0.05 * e.gm * r_eff);
}

TEST(Topologies, CascodeMirrorCopiesAccurately) {
  // Cascode current mirror vs simple mirror under output-voltage stress:
  // the cascode's copy error should be much smaller (output resistance
  // boosted by ~gm*ro).
  const Real iref = 50e-6;
  const auto copy_error = [&](bool cascode) {
    Netlist n;
    const NodeId vdd = n.node("vdd");
    const NodeId bias = n.node("bias");
    const NodeId out = n.node("out");
    n.add_vsource(vdd, kGround, 1.5);
    n.add_isource(vdd, bias, iref);
    const MosfetParams dev = nmos(10e-6, 0.5e-6);
    if (!cascode) {
      n.add_mosfet(bias, bias, kGround, kGround, dev);
      n.add_mosfet(out, bias, kGround, kGround, dev);
    } else {
      const NodeId bias2 = n.node("bias2");
      const NodeId mid = n.node("mid");
      // Reference branch: stacked diodes set both gate rails.
      n.add_mosfet(bias, bias, bias2, kGround, dev);   // top diode
      n.add_mosfet(bias2, bias2, kGround, kGround, dev);  // bottom diode
      // Output branch: bottom device + cascode device.
      n.add_mosfet(mid, bias2, kGround, kGround, dev);
      n.add_mosfet(out, bias, mid, kGround, dev);
    }
    // Force the output node high and measure the copied current through a
    // voltage source acting as ammeter.
    const Index ammeter = static_cast<Index>(n.vsources().size());
    n.add_vsource(n.node("force"), out, 0.0);
    n.add_vsource(n.node("force"), kGround, 1.2);
    // (second source fixes the forcing node; first carries the current)
    const DcSolution sol = solve_dc(n);
    const Real iout = std::abs(vsource_current(n, sol, ammeter));
    return std::abs(iout - iref) / iref;
  };

  const Real simple = copy_error(false);
  const Real casc = copy_error(true);
  EXPECT_LT(casc, simple / 3);
  EXPECT_LT(casc, 0.05);
  EXPECT_GT(simple, 0.02);  // lambda*dVds error is visible in the simple mirror
}

TEST(Topologies, DiodeLoadInverterGainIsGmRatio) {
  // NMOS driver with diode-connected NMOS load: |Av| ~= gm1/gm2
  // = sqrt(beta1/beta2) at equal current.
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource(vdd, kGround, 1.5);
  n.add_vsource(in, kGround, 0.55, 1.0);
  n.add_mosfet(out, in, kGround, kGround, nmos(16e-6, 0.5e-6));  // driver
  n.add_mosfet(vdd, vdd, out, kGround, nmos(1e-6, 0.5e-6));      // diode load
  const DcSolution op = solve_dc(n);
  const std::vector<Phasor> ac = solve_ac(n, op, 1e3);
  const Real gain = std::abs(ac_voltage(ac, out));
  // sqrt(16) = 4, degraded a bit by lambda and operating point.
  EXPECT_NEAR(gain, 4.0, 0.8);
}

TEST(Topologies, RcLadderDcIsLossless) {
  // Pure RC ladder: at DC every node sits at the source voltage.
  Netlist n;
  NodeId prev = n.node("in");
  n.add_vsource(prev, kGround, 0.8);
  for (int i = 0; i < 6; ++i) {
    const NodeId next = n.node(ladder_node(i));
    n.add_resistor(prev, next, 1e3);
    n.add_capacitor(next, kGround, 10e-15);
    prev = next;
  }
  const DcSolution sol = solve_dc(n);
  for (int i = 0; i < 6; ++i)
    EXPECT_NEAR(sol.voltage(n.node(ladder_node(i))), 0.8, 1e-4);
}

TEST(Topologies, RcLadderRollsOffMonotonically) {
  Netlist n;
  NodeId prev = n.node("in");
  n.add_vsource(prev, kGround, 0.0, 1.0);
  NodeId last = prev;
  for (int i = 0; i < 4; ++i) {
    const NodeId next = n.node(ladder_node(i));
    n.add_resistor(prev, next, 1e3);
    n.add_capacitor(next, kGround, 1e-12);
    prev = last = next;
  }
  const DcSolution op = solve_dc(n);
  Real prev_mag = 10;
  for (Real f : {1e6, 1e7, 1e8, 1e9}) {
    const std::vector<Phasor> ac = solve_ac(n, op, f);
    const Real mag = std::abs(ac_voltage(ac, last));
    EXPECT_LT(mag, prev_mag);
    prev_mag = mag;
  }
  // 4-pole ladder: far above the poles the slope is steep (>40 dB/dec).
  const Real m8 = std::abs(ac_voltage(solve_ac(n, op, 1e8), last));
  const Real m9 = std::abs(ac_voltage(solve_ac(n, op, 1e9), last));
  EXPECT_GT(m8 / m9, 100.0);
}

}  // namespace
}  // namespace rsm::spice
