#include "spice/ac.hpp"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "spice/netlist.hpp"

namespace rsm::spice {
namespace {

/// RC low-pass testbench: 1 kOhm into 1 nF -> pole at ~159 kHz.
struct RcLowPass {
  Netlist n;
  NodeId out;
  DcSolution op;

  RcLowPass() {
    const NodeId in = n.node("in");
    out = n.node("out");
    n.add_vsource(in, kGround, 0.0, /*ac=*/1.0);
    n.add_resistor(in, out, 1e3);
    n.add_capacitor(out, kGround, 1e-9);
    op = solve_dc(n);
  }

  [[nodiscard]] Real pole_hz() const {
    return Real{1} / (2 * std::numbers::pi_v<Real> * 1e3 * 1e-9);
  }
};

TEST(Ac, RcLowPassMagnitude) {
  RcLowPass tb;
  // |H| = 1/sqrt(1 + (f/fp)^2).
  for (Real f : {1e3, 1e5, tb.pole_hz(), 1e6, 1e7}) {
    const std::vector<Phasor> sol = solve_ac(tb.n, tb.op, f);
    const Real mag = std::abs(ac_voltage(sol, tb.out));
    const Real expected =
        1.0 / std::sqrt(1.0 + (f / tb.pole_hz()) * (f / tb.pole_hz()));
    EXPECT_NEAR(mag, expected, 1e-3) << "f=" << f;
  }
}

TEST(Ac, RcLowPassPhase) {
  RcLowPass tb;
  const std::vector<Phasor> sol = solve_ac(tb.n, tb.op, tb.pole_hz());
  // At the pole: phase = -45 degrees.
  EXPECT_NEAR(std::arg(ac_voltage(sol, tb.out)),
              -std::numbers::pi_v<Real> / 4, 1e-3);
}

TEST(Ac, Find3dbMatchesAnalyticPole) {
  RcLowPass tb;
  const Real bw = find_3db_bandwidth(tb.n, tb.op, tb.out, 1.0, 1e9);
  EXPECT_NEAR(bw / tb.pole_hz(), 1.0, 1e-3);
}

TEST(Ac, SweepIsMonotonicallyDecreasingForLowPass) {
  RcLowPass tb;
  const std::vector<AcSweepPoint> sweep =
      ac_sweep(tb.n, tb.op, tb.out, 10.0, 1e8, 5);
  ASSERT_GT(sweep.size(), 10u);
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_LE(std::abs(sweep[i].value), std::abs(sweep[i - 1].value) + 1e-12);
}

TEST(Ac, VccsTransconductanceAmplifier) {
  // gm into a load resistor: gain = gm * R, flat with frequency.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource(in, kGround, 0.0, 1.0);
  n.add_vccs(out, kGround, in, kGround, 2e-3);
  n.add_resistor(out, kGround, 5e3);
  const DcSolution op = solve_dc(n);
  for (Real f : {10.0, 1e4, 1e7}) {
    const std::vector<Phasor> sol = solve_ac(n, op, f);
    EXPECT_NEAR(std::abs(ac_voltage(sol, out)), 10.0, 1e-6) << "f=" << f;
  }
}

TEST(Ac, MosfetCommonSourceGain) {
  // AC gain of a resistively loaded common-source stage ~= gm * (R || ro).
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  MosfetParams p;
  p.w = 10e-6;
  p.l = 0.5e-6;
  n.add_vsource(vdd, kGround, 1.2);
  n.add_vsource(in, kGround, 0.6, /*ac=*/1.0);
  n.add_mosfet(out, in, kGround, kGround, p);
  n.add_resistor(vdd, out, 5e3);
  const DcSolution op = solve_dc(n);
  const MosfetEval e = evaluate_nmos_convention(p, 0.6, op.voltage(out));
  const Real r_load = 1.0 / (1.0 / 5e3 + e.gds);
  const std::vector<Phasor> sol = solve_ac(n, op, 100.0);
  EXPECT_NEAR(std::abs(ac_voltage(sol, out)), e.gm * r_load,
              0.01 * e.gm * r_load);
}

TEST(Ac, UnityGainFrequency) {
  // Integrator-like stage: gm = 1 mS into 1 nF; unity at gm/(2 pi C).
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource(in, kGround, 0.0, 1.0);
  n.add_vccs(out, kGround, in, kGround, 1e-3);
  n.add_capacitor(out, kGround, 1e-9);
  n.add_resistor(out, kGround, 1e6);  // finite DC gain
  const DcSolution op = solve_dc(n);
  const Real fu = find_unity_gain_frequency(n, op, out, 10.0, 1e9);
  const Real expected = 1e-3 / (2 * std::numbers::pi_v<Real> * 1e-9);
  EXPECT_NEAR(fu / expected, 1.0, 0.01);
}

TEST(Ac, GroundVoltageIsZero) {
  RcLowPass tb;
  const std::vector<Phasor> sol = solve_ac(tb.n, tb.op, 1e3);
  EXPECT_EQ(ac_voltage(sol, kGround), Phasor{});
}

}  // namespace
}  // namespace rsm::spice
