#include "spice/dc.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "spice/mosfet.hpp"
#include "spice/netlist.hpp"

namespace rsm::spice {
namespace {

TEST(Dc, ResistorDivider) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId mid = n.node("mid");
  n.add_vsource(in, kGround, 3.0);
  n.add_resistor(in, mid, 1e3);
  n.add_resistor(mid, kGround, 2e3);
  const DcSolution sol = solve_dc(n);
  EXPECT_TRUE(sol.converged);
  EXPECT_NEAR(sol.voltage(mid), 2.0, 1e-6);
  // Source current: 3V over 3k = 1 mA flowing out of the + terminal, which
  // in the MNA branch convention is -1 mA through the source.
  EXPECT_NEAR(vsource_current(n, sol, 0), -1e-3, 1e-8);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Netlist n;
  const NodeId a = n.node("a");
  n.add_isource(kGround, a, 2e-3);  // 2 mA into node a
  n.add_resistor(a, kGround, 1e3);
  const DcSolution sol = solve_dc(n);
  EXPECT_NEAR(sol.voltage(a), 2.0, 1e-6);
}

TEST(Dc, CapacitorIsOpenAtDc) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId mid = n.node("mid");
  n.add_vsource(in, kGround, 1.0);
  n.add_resistor(in, mid, 1e3);
  n.add_capacitor(mid, kGround, 1e-9);
  const DcSolution sol = solve_dc(n);
  // No DC path through the cap: mid floats to the source voltage (through
  // gmin it settles within tolerance).
  EXPECT_NEAR(sol.voltage(mid), 1.0, 1e-3);
}

TEST(Dc, VcvsAmplifies) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource(in, kGround, 0.25);
  n.add_vcvs(out, kGround, in, kGround, 8.0);
  n.add_resistor(out, kGround, 1e3);
  const DcSolution sol = solve_dc(n);
  EXPECT_NEAR(sol.voltage(out), 2.0, 1e-9);
}

TEST(Dc, VccsConverts) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource(in, kGround, 0.5);
  n.add_vccs(out, kGround, in, kGround, 1e-3);  // I = gm * vin into out? sign
  n.add_resistor(out, kGround, 2e3);
  const DcSolution sol = solve_dc(n);
  // I(p->q) = gm*(vcp-vcq) = 0.5 mA flows out -> gnd inside the source,
  // i.e. it pulls node 'out' down: V(out) = -gm*V(in)*R (within the gmin
  // convergence-aid leakage, ~R*gmin relative).
  EXPECT_NEAR(sol.voltage(out), -1.0, 1e-8);
}

TEST(Dc, DiodeConnectedMosfet) {
  // Ibias into a diode-connected NMOS: VGS settles so that Ids = Ibias.
  Netlist n;
  const NodeId d = n.node("d");
  MosfetParams p;
  p.vt0 = 0.4;
  p.kp = 200e-6;
  p.lambda = 0.0;  // no CLM: clean square-law check
  p.w = 10e-6;
  p.l = 1e-6;
  n.add_isource(kGround, d, 100e-6);  // 100 uA into the drain
  n.add_mosfet(d, d, kGround, kGround, p);
  const DcSolution sol = solve_dc(n);
  const Real vgs = sol.voltage(d);
  // Square law: vgs = vt + sqrt(2 I / beta) = 0.4 + sqrt(2e-4/2e-3) = 0.716.
  EXPECT_NEAR(vgs, 0.4 + std::sqrt(2 * 100e-6 / (200e-6 * 10)), 0.01);
  // Device current matches the bias.
  const MosfetEval e = evaluate_nmos_convention(p, vgs, vgs);
  EXPECT_NEAR(e.ids, 100e-6, 2e-6);
}

TEST(Dc, NmosCurrentMirror) {
  Netlist n;
  const NodeId bias = n.node("bias");
  const NodeId out = n.node("out");
  const NodeId vdd = n.node("vdd");
  MosfetParams p;
  p.vt0 = 0.4;
  p.kp = 200e-6;
  p.lambda = 0.0;
  p.w = 10e-6;
  p.l = 1e-6;
  n.add_vsource(vdd, kGround, 1.2);
  n.add_isource(vdd, bias, 50e-6);
  n.add_mosfet(bias, bias, kGround, kGround, p);  // diode reference
  MosfetParams p2 = p;
  p2.w = 30e-6;  // 3x mirror
  n.add_mosfet(out, bias, kGround, kGround, p2);
  n.add_resistor(vdd, out, 2e3);
  const DcSolution sol = solve_dc(n);
  // Mirror output current = 3 * 50 uA = 150 uA -> 0.3 V drop across 2k.
  EXPECT_NEAR(sol.voltage(out), 1.2 - 0.3, 0.02);
}

TEST(Dc, CommonSourceAmplifierGainSign) {
  // NMOS common source with resistive load: raising the input must lower
  // the output.
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  MosfetParams p;
  p.w = 5e-6;
  p.l = 0.2e-6;
  n.add_vsource(vdd, kGround, 1.2);
  const VsourceId vin = n.add_vsource(in, kGround, 0.55);
  n.add_mosfet(out, in, kGround, kGround, p);
  n.add_resistor(vdd, out, 10e3);
  const DcSolution lo = solve_dc(n);
  n.vsource(vin).dc = 0.60;
  const DcSolution hi = solve_dc(n);
  EXPECT_LT(hi.voltage(out), lo.voltage(out));
  EXPECT_GT(lo.voltage(out), 0.0);
  EXPECT_LT(lo.voltage(out), 1.2);
}

TEST(Dc, WarmStartReducesIterations) {
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId out = n.node("out");
  MosfetParams p;
  p.w = 5e-6;
  p.l = 0.2e-6;
  n.add_vsource(vdd, kGround, 1.2);
  n.add_isource(vdd, out, 20e-6);
  n.add_mosfet(out, out, kGround, kGround, p);
  const DcSolution cold = solve_dc(n);
  const DcSolution warm = solve_dc(n, {}, cold.x);
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(Dc, EmptyNetlistThrows) {
  Netlist n;
  EXPECT_THROW(solve_dc(n), Error);
}

TEST(Dc, PmosSourceFollowerLevel) {
  // PMOS diode from vdd: V(drain) = vdd - |vgs|.
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId d = n.node("d");
  MosfetParams p;
  p.type = MosType::kPmos;
  p.vt0 = 0.45;
  p.kp = 80e-6;
  p.lambda = 0.0;
  p.w = 20e-6;
  p.l = 1e-6;
  n.add_vsource(vdd, kGround, 1.2);
  n.add_mosfet(d, d, vdd, vdd, p);       // diode-connected PMOS
  n.add_isource(d, kGround, 80e-6);      // pull 80 uA out of the drain
  const DcSolution sol = solve_dc(n);
  const Real vsg = 1.2 - sol.voltage(d);
  EXPECT_NEAR(vsg, 0.45 + std::sqrt(2 * 80e-6 / (80e-6 * 20)), 0.02);
}

}  // namespace
}  // namespace rsm::spice
