#include "spice/parser.hpp"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "spice/ac.hpp"
#include "spice/dc.hpp"

namespace rsm::spice {
namespace {

TEST(SpiceNumber, PlainAndSuffixed) {
  EXPECT_DOUBLE_EQ(parse_spice_number("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_spice_number("-3"), -3.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5k"), 2500.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("20u"), 20e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("1m"), 1e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("3meg"), 3e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("100f"), 100e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("2p"), 2e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("5n"), 5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("1t"), 1e12);
  EXPECT_DOUBLE_EQ(parse_spice_number("1e-6"), 1e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("1E3"), 1e3);
}

TEST(SpiceNumber, Malformed) {
  EXPECT_THROW((void)parse_spice_number("abc"), Error);
  EXPECT_THROW((void)parse_spice_number("1.5x"), Error);
  EXPECT_THROW((void)parse_spice_number(""), Error);
}

TEST(Parser, ResistorDividerParsesAndSolves) {
  const Netlist n = parse_netlist(R"(
* resistor divider
V1 in 0 3
R1 in mid 1k
R2 mid 0 2k
.end
)");
  EXPECT_EQ(n.resistors().size(), 2u);
  EXPECT_EQ(n.vsources().size(), 1u);
  Netlist copy = n;
  const DcSolution sol = solve_dc(copy);
  EXPECT_NEAR(sol.voltage(copy.node("mid")), 2.0, 1e-6);
}

TEST(Parser, CommentsAndContinuations) {
  const Netlist n = parse_netlist(
      "* top comment\n"
      "R1 a b\n"
      "+ 2k ; inline comment after continuation\n"
      "V1 a 0 1 ; drive\n");
  ASSERT_EQ(n.resistors().size(), 1u);
  EXPECT_DOUBLE_EQ(n.resistors()[0].resistance, 2000.0);
}

TEST(Parser, SourcesWithDcAndAc) {
  const Netlist n = parse_netlist(
      "V1 in 0 DC 0.6 AC 1\n"
      "I1 0 out 2m\n");
  ASSERT_EQ(n.vsources().size(), 1u);
  EXPECT_DOUBLE_EQ(n.vsources()[0].dc, 0.6);
  EXPECT_DOUBLE_EQ(n.vsources()[0].ac, 1.0);
  ASSERT_EQ(n.isources().size(), 1u);
  EXPECT_DOUBLE_EQ(n.isources()[0].dc, 2e-3);
}

TEST(Parser, ControlledSources) {
  const Netlist n = parse_netlist(
      "E1 out 0 in 0 8\n"
      "G1 load 0 in 0 1m\n");
  ASSERT_EQ(n.vcvs_list().size(), 1u);
  EXPECT_DOUBLE_EQ(n.vcvs_list()[0].gain, 8.0);
  ASSERT_EQ(n.vccs_list().size(), 1u);
  EXPECT_DOUBLE_EQ(n.vccs_list()[0].gm, 1e-3);
}

TEST(Parser, MosfetWithModelCard) {
  const Netlist n = parse_netlist(R"(
.model nch NMOS (VT0=0.45 KP=180u LAMBDA=0.12)
.model pch PMOS (VT0=0.5 KP=80u)
M1 d g 0 0 nch W=4u L=120n
M2 d2 g vdd vdd pch W=8u L=240n
V1 vdd 0 1.2
)");
  ASSERT_EQ(n.mosfets().size(), 2u);
  const Mosfet& m1 = n.mosfets()[0];
  EXPECT_EQ(m1.params.type, MosType::kNmos);
  EXPECT_DOUBLE_EQ(m1.params.vt0, 0.45);
  EXPECT_DOUBLE_EQ(m1.params.kp, 180e-6);
  EXPECT_DOUBLE_EQ(m1.params.lambda, 0.12);
  EXPECT_DOUBLE_EQ(m1.params.w, 4e-6);
  EXPECT_DOUBLE_EQ(m1.params.l, 120e-9);
  EXPECT_EQ(n.mosfets()[1].params.type, MosType::kPmos);
}

TEST(Parser, ModelMayFollowUse) {
  const Netlist n = parse_netlist(
      "M1 d g 0 0 nch W=1u L=100n\n"
      ".model nch NMOS (VT0=0.4 KP=200u)\n");
  ASSERT_EQ(n.mosfets().size(), 1u);
  EXPECT_DOUBLE_EQ(n.mosfets()[0].params.vt0, 0.4);
}

TEST(Parser, CaseInsensitiveNodesAndGround) {
  const Netlist n = parse_netlist(
      "R1 OUT GND 1k\n"
      "R2 out 0 1k\n");
  // "OUT"/"out" are one node; "GND"/"0" are ground.
  EXPECT_EQ(n.resistors()[0].a, n.resistors()[1].a);
  EXPECT_EQ(n.resistors()[0].b, kGround);
  EXPECT_EQ(n.resistors()[1].b, kGround);
}

TEST(Parser, ParsedAmplifierMatchesBuilderResult) {
  // Common-source amp via text vs via builder calls: identical AC gain.
  const std::string text = R"(
.model nch NMOS (VT0=0.4 KP=200u LAMBDA=0.1)
Vdd vdd 0 1.2
Vin in 0 DC 0.6 AC 1
M1 out in 0 0 nch W=10u L=500n
Rl vdd out 5k
)";
  Netlist parsed = parse_netlist(text);
  const DcSolution op = solve_dc(parsed);
  const std::vector<Phasor> ac = solve_ac(parsed, op, 100.0);
  const Real gain_parsed = std::abs(ac_voltage(ac, parsed.node("out")));

  Netlist built;
  const auto vdd = built.node("vdd");
  const auto in = built.node("in");
  const auto out = built.node("out");
  built.add_vsource(vdd, kGround, 1.2);
  built.add_vsource(in, kGround, 0.6, 1.0);
  MosfetParams p;
  p.vt0 = 0.4;
  p.kp = 200e-6;
  p.lambda = 0.1;
  p.w = 10e-6;
  p.l = 500e-9;
  built.add_mosfet(out, in, kGround, kGround, p);
  built.add_resistor(vdd, out, 5e3);
  const DcSolution op2 = solve_dc(built);
  const std::vector<Phasor> ac2 = solve_ac(built, op2, 100.0);
  const Real gain_built = std::abs(ac_voltage(ac2, out));

  EXPECT_NEAR(gain_parsed, gain_built, 1e-9 * gain_built);
  EXPECT_GT(gain_parsed, 1.0);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_netlist("R1 a b 1k\nR2 a b\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsUnknownCards) {
  EXPECT_THROW(parse_netlist("X1 a b mystery\n"), Error);
  EXPECT_THROW(parse_netlist(".tran 1n 10n\n"), Error);
  EXPECT_THROW(parse_netlist("M1 d g 0 0 missing_model\n"), Error);
  EXPECT_THROW(parse_netlist("R1 a b -5\n"), Error);  // netlist validation
}

TEST(Parser, SubcircuitExpandsWithLocalNodes) {
  // Two divider instances: internal node "mid" must be distinct per
  // instance.
  const Netlist n = parse_netlist(R"(
.subckt divider in out
R1 in mid 1k
R2 mid out 1k
.ends
V1 a 0 2
X1 a b divider
X2 b 0 divider
)");
  // 2 instances x 2 resistors.
  EXPECT_EQ(n.resistors().size(), 4u);
  Netlist copy = n;
  const DcSolution sol = solve_dc(copy);
  // Series chain of 4 equal resistors from 2 V to ground: b = 1 V.
  EXPECT_NEAR(sol.voltage(copy.node("b")), 1.0, 1e-6);
  // Internal nodes got hierarchical names.
  EXPECT_NEAR(sol.voltage(copy.node("x1.mid")), 1.5, 1e-6);
  EXPECT_NEAR(sol.voltage(copy.node("x2.mid")), 0.5, 1e-6);
}

TEST(Parser, NestedSubcircuitInstancesExpand) {
  // A subckt instantiating another subckt.
  const Netlist n = parse_netlist(R"(
.subckt unit a b
R1 a b 1k
.ends
.subckt pair a b
X1 a m unit
X2 m b unit
.ends
V1 top 0 1
Xp top 0 pair
)");
  EXPECT_EQ(n.resistors().size(), 2u);
  Netlist copy = n;
  const DcSolution sol = solve_dc(copy);
  EXPECT_NEAR(sol.voltage(copy.node("xp.m")), 0.5, 1e-6);
}

TEST(Parser, SubcircuitUsesGlobalModels) {
  const Netlist n = parse_netlist(R"(
.model nch NMOS (VT0=0.4 KP=200u)
.subckt inv in out vdd
M1 out in 0 0 nch W=2u L=100n
R1 vdd out 10k
.ends
V1 vdd 0 1.2
V2 in 0 0.6
X1 in out vdd inv
)");
  EXPECT_EQ(n.mosfets().size(), 1u);
  EXPECT_EQ(n.resistors().size(), 1u);
}

TEST(Parser, SubcircuitErrors) {
  EXPECT_THROW(parse_netlist(".subckt s a\nR1 a 0 1k\n"), Error);  // no .ends
  EXPECT_THROW(parse_netlist(".subckt s\n.ends\n"), Error);  // no ports
  EXPECT_THROW(parse_netlist("X1 a b missing\n"), Error);    // unknown
  EXPECT_THROW(parse_netlist(R"(
.subckt s a b
R1 a b 1k
.ends
X1 n1 s
)"),
               Error);  // port-count mismatch (1 node for 2 ports)
}

TEST(Parser, GroundStaysGlobalInsideSubcircuits) {
  const Netlist n = parse_netlist(R"(
.subckt pull a
R1 a 0 1k
.ends
V1 x 0 1
X1 x pull
)");
  Netlist copy = n;
  const DcSolution sol = solve_dc(copy);
  // Current flows: 1 V across the subckt's resistor to the global ground.
  EXPECT_NEAR(vsource_current(copy, sol, 0), -1e-3, 1e-8);
}

TEST(Parser, ContinuationWithoutCardThrows) {
  EXPECT_THROW(parse_netlist("+ 2k\n"), Error);
}

TEST(Parser, FuzzRandomTokenStreamsThrowButNeverCrash) {
  // Pseudo-random card soup: every input either parses or throws rsm::Error
  // — no crashes, hangs, or other exception types.
  const char* vocab[] = {"R1", "C2", "V3",  "M4",   "X5",   ".model", ".subckt",
                         "a",  "b",  "0",   "1k",   "2u",   "nch",    "NMOS",
                         "+",  "*",  "DC",  "AC",   "W=1u", "L=",     "=",
                         ".ends", ".end",   "-1e9", "zz9"};
  std::uint64_t state = 12345;
  const auto next = [&]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return (state >> 33) % (sizeof(vocab) / sizeof(vocab[0]));
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int lines = 1 + static_cast<int>(next() % 6);
    for (int l = 0; l < lines; ++l) {
      const int words = 1 + static_cast<int>(next() % 6);
      for (int w = 0; w < words; ++w) {
        text += vocab[next()];
        text += ' ';
      }
      text += '\n';
    }
    try {
      (void)parse_netlist(text);
    } catch (const Error&) {
      // expected for most soups
    }
  }
  SUCCEED();
}

TEST(Parser, EndStopsParsing) {
  const Netlist n = parse_netlist(
      "R1 a 0 1k\n"
      ".end\n"
      "R2 b 0 2k\n");
  EXPECT_EQ(n.resistors().size(), 1u);
}

}  // namespace
}  // namespace rsm::spice
