#include "spice/mosfet.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace rsm::spice {
namespace {

MosfetParams test_device() {
  MosfetParams p;
  p.vt0 = 0.4;
  p.kp = 200e-6;
  p.lambda = 0.1;
  p.w = 10e-6;
  p.l = 1e-6;
  return p;
}

TEST(Mosfet, SaturationApproachesSquareLaw) {
  // Deep strong inversion, vds >> vov: the EKV blend must match the
  // square-law saturation current within the CLM factor.
  const MosfetParams p = test_device();
  const Real vgs = 1.0, vds = 1.2;
  const Real vov = vgs - p.vt0;
  const MosfetEval e = evaluate_nmos_convention(p, vgs, vds);
  const Real square_law = 0.5 * p.beta() * vov * vov * (1 + p.lambda * vds);
  EXPECT_NEAR(e.ids, square_law, 0.02 * square_law);
}

TEST(Mosfet, TriodeApproachesSquareLaw) {
  const MosfetParams p = test_device();
  const Real vgs = 1.2, vds = 0.2;  // vov = 0.8 >> vds
  const MosfetEval e = evaluate_nmos_convention(p, vgs, vds);
  const Real vov = vgs - p.vt0;
  const Real square_law =
      p.beta() * (vov * vds - 0.5 * vds * vds) * (1 + p.lambda * vds);
  EXPECT_NEAR(e.ids, square_law, 0.03 * square_law);
}

TEST(Mosfet, SubthresholdIsExponential) {
  // 60*n mV/decade deep below threshold: current ratio ~10 for
  // dVgs = n*vt*ln(10). The EKV blend softens toward threshold, so test
  // well below it and allow the moderate-inversion correction.
  const MosfetParams p = test_device();
  const Real n_vt = kSubthresholdSlope * kThermalVoltage;
  const Real i1 = evaluate_nmos_convention(p, 0.05, 1.0).ids;
  const Real i2 =
      evaluate_nmos_convention(p, 0.05 + n_vt * std::log(10.0), 1.0).ids;
  EXPECT_NEAR(i2 / i1, 10.0, 1.5);
}

TEST(Mosfet, CurrentIsMonotonicInVgs) {
  const MosfetParams p = test_device();
  Real prev = -1;
  for (Real vgs = 0.0; vgs <= 1.2; vgs += 0.01) {
    const Real ids = evaluate_nmos_convention(p, vgs, 0.6).ids;
    EXPECT_GT(ids, prev);
    prev = ids;
  }
}

TEST(Mosfet, CurrentIsMonotonicInVds) {
  const MosfetParams p = test_device();
  Real prev = -1e9;
  for (Real vds = 0.0; vds <= 1.2; vds += 0.01) {
    const Real ids = evaluate_nmos_convention(p, 0.8, vds).ids;
    EXPECT_GE(ids, prev);
    prev = ids;
  }
}

TEST(Mosfet, ZeroVdsZeroCurrent) {
  const MosfetParams p = test_device();
  EXPECT_NEAR(evaluate_nmos_convention(p, 0.8, 0.0).ids, 0.0, 1e-12);
}

TEST(Mosfet, GmMatchesFiniteDifference) {
  const MosfetParams p = test_device();
  const Real h = 1e-7;
  for (Real vgs : {0.3, 0.5, 0.8, 1.1}) {
    for (Real vds : {0.05, 0.3, 0.9}) {
      const Real fd = (evaluate_nmos_convention(p, vgs + h, vds).ids -
                       evaluate_nmos_convention(p, vgs - h, vds).ids) /
                      (2 * h);
      const Real gm = evaluate_nmos_convention(p, vgs, vds).gm;
      EXPECT_NEAR(gm, fd, 1e-5 + 1e-4 * std::abs(fd))
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST(Mosfet, GdsMatchesFiniteDifference) {
  const MosfetParams p = test_device();
  const Real h = 1e-7;
  for (Real vgs : {0.5, 0.8, 1.1}) {
    for (Real vds : {0.1, 0.4, 1.0}) {
      const Real fd = (evaluate_nmos_convention(p, vgs, vds + h).ids -
                       evaluate_nmos_convention(p, vgs, vds - h).ids) /
                      (2 * h);
      const Real gds = evaluate_nmos_convention(p, vgs, vds).gds;
      EXPECT_NEAR(gds, fd, 1e-5 + 1e-3 * std::abs(fd))
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST(Mosfet, ReverseModeAntisymmetric) {
  // Swapping drain and source negates the current (symmetric device).
  const MosfetParams p = test_device();
  const Real vg = 0.9, vd = 0.3, vs = 0.7;  // vds < 0 in NMOS convention
  const MosfetEval rev = evaluate_nmos_convention(p, vg - vs, vd - vs);
  const MosfetEval fwd = evaluate_nmos_convention(p, vg - vd, vs - vd);
  EXPECT_NEAR(rev.ids, -fwd.ids, 1e-12);
}

TEST(Mosfet, CurrentContinuousAcrossVdsSignChange) {
  const MosfetParams p = test_device();
  const Real below = evaluate_nmos_convention(p, 0.8, -1e-9).ids;
  const Real above = evaluate_nmos_convention(p, 0.8, 1e-9).ids;
  EXPECT_NEAR(below, above, 1e-10);
}

TEST(Mosfet, BetaScalesWithGeometry) {
  MosfetParams p = test_device();
  const Real i1 = evaluate_nmos_convention(p, 1.0, 1.0).ids;
  p.w *= 2;
  const Real i2 = evaluate_nmos_convention(p, 1.0, 1.0).ids;
  EXPECT_NEAR(i2 / i1, 2.0, 1e-9);
  p.l *= 2;
  const Real i3 = evaluate_nmos_convention(p, 1.0, 1.0).ids;
  EXPECT_NEAR(i3 / i1, 1.0, 1e-9);
}

TEST(Mosfet, HigherVthLowersCurrent) {
  MosfetParams p = test_device();
  const Real i1 = evaluate_nmos_convention(p, 0.8, 0.6).ids;
  p.vt0 += 0.05;
  const Real i2 = evaluate_nmos_convention(p, 0.8, 0.6).ids;
  EXPECT_LT(i2, i1);
}

}  // namespace
}  // namespace rsm::spice
