#include "spice/netlist.hpp"

#include <gtest/gtest.h>

namespace rsm::spice {
namespace {

TEST(Netlist, GroundAliases) {
  Netlist n;
  EXPECT_EQ(n.node("0"), kGround);
  EXPECT_EQ(n.node("gnd"), kGround);
  EXPECT_EQ(n.num_nodes(), 1);
}

TEST(Netlist, NodeCreationIsIdempotent) {
  Netlist n;
  const NodeId a = n.node("a");
  const NodeId b = n.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(n.node("a"), a);
  EXPECT_EQ(n.num_nodes(), 3);
  EXPECT_EQ(n.node_name(a), "a");
}

TEST(Netlist, MnaSizeCountsBranchCurrents) {
  Netlist n;
  const NodeId a = n.node("a");
  const NodeId b = n.node("b");
  n.add_resistor(a, b, 1e3);
  EXPECT_EQ(n.mna_size(), 2);  // two node voltages, no branches
  n.add_vsource(a, kGround, 1.0);
  EXPECT_EQ(n.mna_size(), 3);
  n.add_vcvs(b, kGround, a, kGround, 2.0);
  EXPECT_EQ(n.mna_size(), 4);
  n.add_isource(a, b, 1e-3);  // current sources add no unknowns
  EXPECT_EQ(n.mna_size(), 4);
}

TEST(Netlist, BranchIndices) {
  Netlist n;
  const NodeId a = n.node("a");
  n.add_vsource(a, kGround, 1.0);
  n.add_vsource(a, kGround, 2.0);
  n.add_vcvs(a, kGround, a, kGround, 1.0);
  EXPECT_EQ(n.vsource_branch_index(0), 1);
  EXPECT_EQ(n.vsource_branch_index(1), 2);
  EXPECT_EQ(n.vcvs_branch_index(0), 3);
  EXPECT_THROW(static_cast<void>(n.vsource_branch_index(2)), Error);
}

TEST(Netlist, ElementHandlesAllowMutation) {
  Netlist n;
  const NodeId a = n.node("a");
  const ResistorId r = n.add_resistor(a, kGround, 1e3);
  const VsourceId v = n.add_vsource(a, kGround, 1.0);
  n.resistor(r).resistance = 2e3;
  n.vsource(v).dc = 3.3;
  EXPECT_EQ(n.resistors()[0].resistance, 2e3);
  EXPECT_EQ(n.vsources()[0].dc, 3.3);
}

TEST(Netlist, RejectsNonPositiveResistance) {
  Netlist n;
  const NodeId a = n.node("a");
  EXPECT_THROW(n.add_resistor(a, kGround, 0.0), Error);
  EXPECT_THROW(n.add_resistor(a, kGround, -5.0), Error);
}

TEST(Netlist, RejectsNegativeCapacitance) {
  Netlist n;
  const NodeId a = n.node("a");
  EXPECT_THROW(n.add_capacitor(a, kGround, -1e-12), Error);
}

TEST(Netlist, MosfetStored) {
  Netlist n;
  const NodeId d = n.node("d"), g = n.node("g");
  MosfetParams p;
  p.type = MosType::kPmos;
  const MosfetId id = n.add_mosfet(d, g, kGround, kGround, p);
  EXPECT_EQ(n.mosfets().size(), 1u);
  EXPECT_EQ(n.mosfet(id).params.type, MosType::kPmos);
}

}  // namespace
}  // namespace rsm::spice
