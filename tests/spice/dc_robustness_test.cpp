// Pathological-netlist coverage for the convergence-aid ladder and the
// structured error taxonomy: circuits that are singular, starved of Newton
// iterations, or multistable, and the strategy that rescues (or correctly
// refuses to rescue) each.
#include <cmath>

#include <gtest/gtest.h>

#include "spice/dc.hpp"
#include "spice/mosfet.hpp"
#include "spice/netlist.hpp"
#include "util/errors.hpp"

namespace rsm::spice {
namespace {

MosfetParams nmos(Real w = 10e-6, Real l = 1e-6) {
  MosfetParams p;
  p.vt0 = 0.4;
  p.kp = 200e-6;
  p.lambda = 0.0;
  p.w = w;
  p.l = l;
  return p;
}

/// The current-mirror circuit from dc_test — nonlinear, well-posed, known
/// answer — used to verify each ladder rung alone reaches the same point.
Netlist mirror_netlist() {
  Netlist n;
  const NodeId bias = n.node("bias");
  const NodeId out = n.node("out");
  const NodeId vdd = n.node("vdd");
  n.add_vsource(vdd, kGround, 1.2);
  n.add_isource(vdd, bias, 50e-6);
  n.add_mosfet(bias, bias, kGround, kGround, nmos());
  MosfetParams p2 = nmos(30e-6);
  n.add_mosfet(out, bias, kGround, kGround, p2);
  n.add_resistor(vdd, out, 2e3);
  return n;
}

TEST(DcRobustness, VoltageSourceLoopThrowsSingularMatrixError) {
  // Two sources forcing different voltages across the same node pair: the
  // two branch rows of the MNA matrix are identical — singular under every
  // strategy, so the ladder must classify it as a topology problem.
  Netlist n;
  const NodeId a = n.node("a");
  n.add_vsource(a, kGround, 3.0);
  n.add_vsource(a, kGround, 5.0);
  n.add_resistor(a, kGround, 1e3);
  try {
    (void)solve_dc(n);
    FAIL() << "expected SingularMatrixError";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSingularMatrix);
    EXPECT_NE(std::string(e.what()).find("singular"), std::string::npos);
  }
}

TEST(DcRobustness, FloatingGateNeedsGmin) {
  // A MOSFET whose gate has no DC path (capacitor only): without gmin the
  // gate row is all zeros -> singular; the default gmin resolves it.
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId gate = n.node("gate");
  const NodeId out = n.node("out");
  n.add_vsource(vdd, kGround, 1.2);
  n.add_capacitor(gate, kGround, 1e-12);
  n.add_mosfet(out, gate, kGround, kGround, nmos());
  n.add_resistor(vdd, out, 10e3);

  DcOptions no_gmin;
  no_gmin.gmin = 0;
  no_gmin.strategies = {DcStrategy::kNewton};
  EXPECT_THROW((void)solve_dc(n, no_gmin), SingularMatrixError);

  const DcSolution sol = solve_dc(n);  // default options
  EXPECT_TRUE(sol.converged);
  EXPECT_NEAR(sol.voltage(gate), 0.0, 1e-6);  // leaked to ground via gmin
  EXPECT_NEAR(sol.voltage(out), 1.2, 1e-3);   // device off
}

TEST(DcRobustness, StarvedIterationBudgetThrowsConvergenceError) {
  Netlist n = mirror_netlist();
  DcOptions opt;
  opt.max_iterations = 2;
  opt.strategies = {DcStrategy::kNewton};
  try {
    (void)solve_dc(n, opt);
    FAIL() << "expected ConvergenceError";
  } catch (const ConvergenceError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNoConvergence);
    EXPECT_EQ(e.strategy(), "newton");
  }
}

TEST(DcRobustness, SourceSteppingAloneMatchesPlainNewton) {
  Netlist n = mirror_netlist();
  const DcSolution reference = solve_dc(n);

  DcOptions opt;
  opt.strategies = {DcStrategy::kSourceStepping};
  const DcSolution sol = solve_dc(n, opt);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.strategy, DcStrategy::kSourceStepping);
  for (NodeId node = 1; node < n.num_nodes(); ++node)
    EXPECT_NEAR(sol.voltage(node), reference.voltage(node), 1e-6);
}

TEST(DcRobustness, PseudoTransientAloneMatchesPlainNewton) {
  Netlist n = mirror_netlist();
  const DcSolution reference = solve_dc(n);

  DcOptions opt;
  opt.strategies = {DcStrategy::kPseudoTransient};
  const DcSolution sol = solve_dc(n, opt);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.strategy, DcStrategy::kPseudoTransient);
  for (NodeId node = 1; node < n.num_nodes(); ++node)
    EXPECT_NEAR(sol.voltage(node), reference.voltage(node), 1e-6);
}

TEST(DcRobustness, BistableLatchSettlesToAStableState) {
  // Cross-coupled NMOS inverters with asymmetric sizing. A flat Newton
  // start from zeros can legitimately land on the metastable midpoint (a
  // valid root of the DC equations), but the source-stepping homotopy ramps
  // the supply from zero, so the stronger pulldown wins the race as devices
  // turn on and the latch regenerates into a genuinely stable, strongly
  // split state.
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId q = n.node("q");
  const NodeId qb = n.node("qb");
  n.add_vsource(vdd, kGround, 1.2);
  n.add_resistor(vdd, q, 100e3);
  n.add_resistor(vdd, qb, 100e3);
  n.add_mosfet(q, qb, kGround, kGround, nmos(24e-6));  // stronger device
  n.add_mosfet(qb, q, kGround, kGround, nmos(6e-6));

  // The default ladder must at minimum return some valid operating point.
  const DcSolution any = solve_dc(n);
  EXPECT_TRUE(any.converged);
  EXPECT_GE(any.voltage(q), -1e-6);
  EXPECT_LE(any.voltage(q), 1.2 + 1e-6);

  DcOptions homotopy;
  homotopy.strategies = {DcStrategy::kSourceStepping};
  const DcSolution sol = solve_dc(n, homotopy);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.strategy, DcStrategy::kSourceStepping);
  const Real vq = sol.voltage(q);
  const Real vqb = sol.voltage(qb);
  // Stable state: the strong side pulled low, the weak side left high.
  EXPECT_GT(vqb - vq, 0.3);
}

TEST(DcRobustness, BranchCurrentsGateConvergence) {
  // With a deliberately loose voltage tolerance, the old criterion (node
  // voltages only) would declare victory while the source current is still
  // moving; the current tolerance must keep iterating until it settles.
  Netlist n = mirror_netlist();
  DcOptions loose;
  loose.voltage_tolerance = 0.05;  // would stop almost immediately
  loose.relative_tolerance = 0;
  loose.current_tolerance = 1e-12;
  const DcSolution sol = solve_dc(n, loose);

  DcOptions tight;  // defaults
  const DcSolution reference = solve_dc(n, tight);
  EXPECT_NEAR(vsource_current(n, sol, 0), vsource_current(n, reference, 0),
              1e-6);
}

TEST(DcRobustness, EscalatedOptionsDeepenEveryLadder) {
  const DcOptions base;
  const DcOptions level0 = escalated(base, 0);
  EXPECT_EQ(level0.max_iterations, base.max_iterations);

  const DcOptions level2 = escalated(base, 2);
  EXPECT_EQ(level2.max_iterations, base.max_iterations * 4);
  EXPECT_LT(level2.max_step, base.max_step);
  EXPECT_GT(level2.gmin_ladder_steps, base.gmin_ladder_steps);
  EXPECT_GT(level2.source_ladder_steps, base.source_ladder_steps);
  EXPECT_GT(level2.ptran_steps, base.ptran_steps);
}

TEST(DcRobustness, SolutionReportsWinningStrategy) {
  Netlist n = mirror_netlist();
  const DcSolution sol = solve_dc(n);
  EXPECT_TRUE(sol.converged);
  EXPECT_EQ(sol.strategy, DcStrategy::kNewton);
  EXPECT_EQ(sol.strategies_tried, 1);
  EXPECT_STREQ(dc_strategy_name(sol.strategy), "newton");
}

}  // namespace
}  // namespace rsm::spice
