#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "spice/dc.hpp"
#include "spice/netlist.hpp"

namespace rsm::spice {
namespace {

TEST(DcSweep, LinearDividerIsLinear) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId mid = n.node("mid");
  const VsourceId src = n.add_vsource(in, kGround, 0.0);
  n.add_resistor(in, mid, 1e3);
  n.add_resistor(mid, kGround, 1e3);
  const std::vector<Real> values{0.0, 0.5, 1.0, 1.5, 2.0};
  const std::vector<Real> out = dc_sweep(n, src, values, mid);
  ASSERT_EQ(out.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(out[i], values[i] / 2, 1e-6);
}

TEST(DcSweep, RestoresOriginalSourceValue) {
  Netlist n;
  const NodeId in = n.node("in");
  const VsourceId src = n.add_vsource(in, kGround, 0.123);
  n.add_resistor(in, kGround, 1e3);
  const std::vector<Real> values{1.0, 2.0};
  (void)dc_sweep(n, src, values, in);
  EXPECT_DOUBLE_EQ(n.vsources()[0].dc, 0.123);
}

TEST(DcSweep, InverterVtcShape) {
  // NMOS inverter with resistive load: VTC is monotone decreasing, starts
  // near VDD, ends low, and has a high-gain transition region.
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource(vdd, kGround, 1.2);
  const VsourceId vin = n.add_vsource(in, kGround, 0.0);
  MosfetParams p;
  p.w = 8e-6;
  p.l = 0.12e-6;
  n.add_mosfet(out, in, kGround, kGround, p);
  n.add_resistor(vdd, out, 20e3);

  std::vector<Real> values;
  for (Real v = 0.0; v <= 1.2001; v += 0.025) values.push_back(v);
  const std::vector<Real> vtc = dc_sweep(n, vin, values, out);

  EXPECT_GT(vtc.front(), 1.15);  // input low: output at VDD
  EXPECT_LT(vtc.back(), 0.1);    // input high: output pulled down
  for (std::size_t i = 1; i < vtc.size(); ++i)
    EXPECT_LE(vtc[i], vtc[i - 1] + 1e-7) << "non-monotone at " << values[i];
  // Max gain |dVout/dVin| exceeds 1 somewhere (it is an amplifier).
  Real max_gain = 0;
  for (std::size_t i = 1; i < vtc.size(); ++i)
    max_gain = std::max(max_gain,
                        std::abs(vtc[i] - vtc[i - 1]) / (values[i] - values[i - 1]));
  EXPECT_GT(max_gain, 2.0);
}

TEST(DcSweep, EmptyValuesThrow) {
  Netlist n;
  const VsourceId src = n.add_vsource(n.node("a"), kGround, 1.0);
  n.add_resistor(n.node("a"), kGround, 1e3);
  EXPECT_THROW((void)dc_sweep(n, src, {}, n.node("a")), Error);
}

}  // namespace
}  // namespace rsm::spice
