#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "spice/netlist.hpp"

namespace rsm::spice {
namespace {

TEST(Transient, RcChargingMatchesAnalytic) {
  // 1 kOhm, 1 pF, step 0 -> 1 V: v(t) = 1 - exp(-t/tau), tau = 1 ns.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  const VsourceId vin = n.add_vsource(in, kGround, 0.0);
  n.add_resistor(in, out, 1e3);
  n.add_capacitor(out, kGround, 1e-12);

  TransientOptions opt;
  opt.timestep = 5e-12;
  opt.stop_time = 5e-9;
  const auto wave = step_waveform(0.0, 1.0, 0.0, 0.0);
  opt.update_sources = [&](Real t, Netlist& net) {
    net.vsource(vin).dc = wave(t);
  };
  opt.start_from_dc = false;

  Netlist net = n;
  const TransientResult res = run_transient(net, opt);
  const Real tau = 1e-9;
  for (std::size_t s = 1; s < res.time.size(); s += 50) {
    const Real t = res.time[s];
    const Real expected = 1.0 - std::exp(-t / tau);
    // Backward Euler at h = tau/200: ~1% local accuracy.
    EXPECT_NEAR(res.voltage(s, out), expected, 0.02) << "t=" << t;
  }
  // Fully settled at 5 tau.
  EXPECT_NEAR(res.voltage(res.time.size() - 1, out), 1.0, 0.01);
}

TEST(Transient, HalvingTimestepReducesError) {
  Netlist base;
  const NodeId in = base.node("in");
  const NodeId out = base.node("out");
  const VsourceId vin = base.add_vsource(in, kGround, 0.0);
  base.add_resistor(in, out, 1e3);
  base.add_capacitor(out, kGround, 1e-12);
  const Real tau = 1e-9;

  const auto max_error = [&](Real h) {
    Netlist net = base;
    TransientOptions opt;
    opt.timestep = h;
    opt.stop_time = 3e-9;
    opt.start_from_dc = false;
    opt.update_sources = [&](Real, Netlist& nl) {
      nl.vsource(vin).dc = 1.0;
    };
    const TransientResult res = run_transient(net, opt);
    Real err = 0;
    for (std::size_t s = 0; s < res.time.size(); ++s) {
      const Real expected = 1.0 - std::exp(-res.time[s] / tau);
      err = std::max(err, std::abs(res.voltage(s, out) - expected));
    }
    return err;
  };

  const Real coarse = max_error(40e-12);
  const Real fine = max_error(10e-12);
  // First-order method: error ~ h.
  EXPECT_LT(fine, coarse / 2.5);
  EXPECT_GT(fine, coarse / 8);
}

TEST(Transient, CapacitorBlocksDc) {
  // Series C into R: after the step transient, current decays to zero and
  // the output returns to 0.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId mid = n.node("mid");
  const VsourceId vin = n.add_vsource(in, kGround, 0.0);
  n.add_capacitor(in, mid, 1e-12);
  n.add_resistor(mid, kGround, 1e3);

  TransientOptions opt;
  opt.timestep = 5e-12;
  opt.stop_time = 10e-9;
  opt.start_from_dc = false;
  opt.update_sources = [&](Real t, Netlist& nl) {
    nl.vsource(vin).dc = t > 0 ? 1.0 : 0.0;
  };
  const TransientResult res = run_transient(n, opt);
  // Early: the step couples through (high-pass).
  EXPECT_GT(res.voltage(5, mid), 0.5);
  // Late: fully decayed.
  EXPECT_NEAR(res.voltage(res.time.size() - 1, mid), 0.0, 0.01);
}

TEST(Transient, MosfetInverterSwitches) {
  // NMOS common-source inverter with resistive pull-up and load cap:
  // input low -> output high; input steps high -> output falls.
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource(vdd, kGround, 1.2);
  const VsourceId vin = n.add_vsource(in, kGround, 0.0);
  MosfetParams p;
  p.w = 4e-6;
  p.l = 0.12e-6;
  n.add_mosfet(out, in, kGround, kGround, p);
  n.add_resistor(vdd, out, 20e3);
  n.add_capacitor(out, kGround, 20e-15);

  TransientOptions opt;
  opt.timestep = 2e-12;
  opt.stop_time = 3e-9;
  const auto wave = step_waveform(0.0, 1.2, 1e-9, 50e-12);
  opt.update_sources = [&](Real t, Netlist& nl) {
    nl.vsource(vin).dc = wave(t);
  };
  const TransientResult res = run_transient(n, opt);

  // Before the step: output near VDD.
  const auto idx_of = [&](Real t) {
    return static_cast<std::size_t>(t / opt.timestep);
  };
  EXPECT_GT(res.voltage(idx_of(0.9e-9), out), 1.1);
  // Well after: output pulled low.
  EXPECT_LT(res.voltage(idx_of(2.8e-9), out), 0.2);
  // Output is monotonically non-increasing during the fall.
  Real prev = res.voltage(idx_of(1.1e-9), out);
  for (Real t = 1.15e-9; t < 2.5e-9; t += 0.05e-9) {
    const Real v = res.voltage(idx_of(t), out);
    EXPECT_LE(v, prev + 1e-6);
    prev = v;
  }
}

TEST(Transient, StartFromDcIsSteadyWithConstantSources) {
  // With constant sources and a DC start, nothing moves.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource(in, kGround, 0.7);
  n.add_resistor(in, out, 1e3);
  n.add_capacitor(out, kGround, 1e-12);
  TransientOptions opt;
  opt.timestep = 10e-12;
  opt.stop_time = 1e-9;
  const TransientResult res = run_transient(n, opt);
  for (std::size_t s = 0; s < res.time.size(); ++s)
    EXPECT_NEAR(res.voltage(s, out), 0.7, 1e-6);
}

TEST(Transient, StepWaveformShape) {
  const auto w = step_waveform(0.2, 1.0, 1e-9, 0.2e-9);
  EXPECT_EQ(w(0.5e-9), 0.2);
  EXPECT_EQ(w(1e-9), 0.2);
  EXPECT_NEAR(w(1.1e-9), 0.6, 1e-12);
  EXPECT_EQ(w(1.3e-9), 1.0);
  EXPECT_EQ(w(5e-9), 1.0);
}

TEST(Transient, InvalidOptionsThrow) {
  Netlist n;
  n.add_vsource(n.node("a"), kGround, 1.0);
  TransientOptions opt;
  opt.timestep = 0;
  EXPECT_THROW(run_transient(n, opt), Error);
}

}  // namespace
}  // namespace rsm::spice
