#!/usr/bin/env python3
"""Tests for scripts/check_bench_json.py (run by ctest as
`scripts.check_bench_json`).

Builds minimal schema-v2 reports in a tempdir and verifies the serve-layer
validation: a well-formed model_serve report passes, and each guarded
defect — unequal protocol counters, a non-bit-identical round trip, a
missing batch table, a malformed fingerprint — fails the gate. Same for
the model_server --report shape (eval/request accounting, the
signal_cancelled flag).

Usage: check_bench_json_test.py <repo_root>
"""

import copy
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else \
    Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "scripts" / "check_bench_json.py"


def envelope(tool, results):
    """Smallest document that satisfies the schema-v2 envelope checks."""
    return {
        "schema_version": 2,
        "tool": tool,
        "generated_unix_ms": 1,
        "tracing": {"compiled": False, "enabled": False},
        "spans": {"name": "", "count": 0, "total_seconds": 0,
                  "min_seconds": 0, "max_seconds": 0, "cpu_seconds": 0,
                  "children": []},
        "resources": {"valid": False, "max_rss_kb": 0, "current_rss_kb": 0,
                      "minor_faults": 0, "major_faults": 0,
                      "voluntary_ctx_switches": 0,
                      "involuntary_ctx_switches": 0,
                      "user_cpu_seconds": 0, "system_cpu_seconds": 0},
        "metrics": {"counters": [], "gauges": [], "histograms": []},
        "telemetry": {"records": [], "dropped": 0},
        "results": results,
    }


SERVE_RESULTS = {
    "variables": 6, "coefficients": 7, "training_samples": 40, "lambda": 3,
    "test_error": 0.05, "fit_seconds": 0.01,
    "round_trip": {"probes": 100, "predict_identical": True,
                   "gradient_identical": True, "version": 1,
                   "dictionary_fingerprint": "0123456789abcdef"},
    "scalar": {"evals": 1000, "checksum": 0.25, "seconds": 0.001,
               "evals_per_second": 1.0e6},
    "batch": {"16": {"rows": 4096, "checksum": 0.5,
                     "evals_per_second": 4.0e6, "speedup_vs_scalar": 4.0}},
    "protocol": {"frames_attempted": 64, "frames_round_tripped": 64,
                 "corrupted_frames_rejected": 64},
    "server": {"requests": 16, "accepted": 8, "shed": 8, "timed_out": 1,
               "idle_closed": 0, "reloads": 1, "reload_failures": 1,
               "burst_overloaded": 8, "healthy_evals": 1,
               "retry_after_hint_ms": 25},
}

SERVER_RESULTS = {
    "connections": 3, "requests": 7, "evals": 2, "batch_rows": 128,
    "protocol_errors": 1, "request_errors": 1, "signal_cancelled": True,
    "accepted": 5, "shed": 2, "timed_out": 1, "idle_closed": 0,
    "reloads": 1, "reload_failures": 0,
}

failures = []


def check(condition, label):
    print(("ok   " if condition else "FAIL ") + label)
    if not condition:
        failures.append(label)


def run_checker(tmp, doc, name="report.json"):
    path = Path(tmp) / name
    path.write_text(json.dumps(doc), encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, str(CHECKER), str(path)],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout + proc.stderr


def serve_doc(mutate=None):
    doc = envelope("model_serve", copy.deepcopy(SERVE_RESULTS))
    if mutate:
        mutate(doc["results"])
    return doc


def server_doc(mutate=None):
    doc = envelope("model_server", copy.deepcopy(SERVER_RESULTS))
    if mutate:
        mutate(doc["results"])
    return doc


def main():
    with tempfile.TemporaryDirectory() as tmp:
        code, out = run_checker(tmp, serve_doc())
        check(code == 0 and "tool=model_serve" in out,
              f"well-formed model_serve report passes\n{out}")

        def unequal_protocol(r):
            r["protocol"]["corrupted_frames_rejected"] = 63
        code, out = run_checker(tmp, serve_doc(unequal_protocol))
        check(code == 1 and "corrupted_frames_rejected" in out,
              "protocol counter short of frames_attempted rejected")

        def drifted(r):
            r["round_trip"]["predict_identical"] = False
        code, out = run_checker(tmp, serve_doc(drifted))
        check(code == 1 and "predict_identical" in out,
              "non-bit-identical round trip rejected")

        def no_batch(r):
            r["batch"] = {}
        code, out = run_checker(tmp, serve_doc(no_batch))
        check(code == 1 and "batch" in out, "empty batch table rejected")

        def bad_batch_key(r):
            r["batch"]["zero"] = r["batch"].pop("16")
        code, _ = run_checker(tmp, serve_doc(bad_batch_key))
        check(code == 1, "non-numeric batch-size key rejected")

        def bad_fingerprint(r):
            r["round_trip"]["dictionary_fingerprint"] = "0123456789ABCDEF"
        code, out = run_checker(tmp, serve_doc(bad_fingerprint))
        check(code == 1 and "fingerprint" in out,
              "uppercase fingerprint rejected (must be 16 lowercase hex)")

        def no_scalar(r):
            del r["scalar"]
        code, _ = run_checker(tmp, serve_doc(no_scalar))
        check(code == 1, "missing scalar block rejected")

        def bool_lambda(r):
            r["lambda"] = True
        code, _ = run_checker(tmp, serve_doc(bool_lambda))
        check(code == 1, "boolean where integer expected rejected")

        code, out = run_checker(tmp, server_doc())
        check(code == 0 and "tool=model_server" in out,
              f"well-formed model_server report passes\n{out}")

        def more_evals_than_requests(r):
            r["evals"] = r["requests"] + 1
        code, out = run_checker(tmp, server_doc(more_evals_than_requests))
        check(code == 1 and "evals" in out,
              "evals exceeding requests rejected")

        def stringy_flag(r):
            r["signal_cancelled"] = "yes"
        code, _ = run_checker(tmp, server_doc(stringy_flag))
        check(code == 1, "non-boolean signal_cancelled rejected")

        def negative_counter(r):
            r["connections"] = -1
        code, _ = run_checker(tmp, server_doc(negative_counter))
        check(code == 1, "negative connection counter rejected")

        # Overload accounting: every request is exactly one of accepted /
        # shed, in both the bench's server block and the server report.
        def unbalanced_admission(r):
            r["shed"] = r["shed"] + 1
        code, out = run_checker(tmp, server_doc(unbalanced_admission))
        check(code == 1 and "accepted" in out,
              "server report with accepted + shed != requests rejected")
        def unbalanced_bench(r):
            r["server"]["accepted"] = r["server"]["accepted"] - 1
        code, out = run_checker(tmp, serve_doc(unbalanced_bench))
        check(code == 1 and "accepted" in out,
              "bench server block with accepted + shed != requests rejected")

        def missing_shed_counter(r):
            del r["shed"]
        code, out = run_checker(tmp, server_doc(missing_shed_counter))
        check(code == 1 and "shed" in out,
              "server report without shed counter rejected")

        def negative_reloads(r):
            r["server"]["reloads"] = -1
        code, out = run_checker(tmp, serve_doc(negative_reloads))
        check(code == 1 and "reloads" in out,
              "negative reload counter rejected")

        def stringy_timeouts(r):
            r["timed_out"] = "1"
        code, _ = run_checker(tmp, server_doc(stringy_timeouts))
        check(code == 1, "non-integer timed_out counter rejected")

        # The serve checks are keyed on the tool name: other tools with
        # arbitrary results are untouched by them.
        code, _ = run_checker(tmp, envelope("some_other_bench",
                                            {"free_form": 1}))
        check(code == 0, "serve checks do not apply to other tools")

    if failures:
        print(f"\n{len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("\nall check_bench_json self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
