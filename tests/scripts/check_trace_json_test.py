#!/usr/bin/env python3
"""Tests for scripts/check_trace_json.py (run by ctest as
`scripts.check_trace_json`).

Builds small Chrome-trace documents in a tempdir and verifies the
validator accepts well-formed exports and rejects each structural defect
it guards against: unexpected phases, missing thread metadata, negative
durations, overlap-without-nesting, and absent --expect-span names.

Usage: check_trace_json_test.py <repo_root>
"""

import copy
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else \
    Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "scripts" / "check_trace_json.py"


def x_event(name, tid, ts, dur):
    return {"name": name, "cat": "span", "ph": "X", "pid": 1, "tid": tid,
            "ts": ts, "dur": dur,
            "args": {"count": 1, "min_ms": 0.1, "max_ms": 0.2, "cpu_ms": 0.1}}


def meta(name, tid, value):
    return {"name": name, "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": value}}


GOOD = {
    "displayTimeUnit": "ms",
    "otherData": {"process_name": "unit", "threads": 1},
    "traceEvents": [
        meta("process_name", 0, "unit"),
        meta("thread_name", 1, "rsm-thread-1"),
        x_event("outer", 1, 0.0, 100.0),
        x_event("inner", 1, 10.0, 50.0),   # nested inside outer
        x_event("later", 1, 100.0, 20.0),  # sibling after outer
    ],
}

failures = []


def check(condition, label):
    print(("ok   " if condition else "FAIL ") + label)
    if not condition:
        failures.append(label)


def run_checker(tmp, doc, *args, name="trace.json"):
    path = Path(tmp) / name
    path.write_text(json.dumps(doc), encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, str(CHECKER), str(path), *args],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    with tempfile.TemporaryDirectory() as tmp:
        code, out = run_checker(tmp, GOOD)
        check(code == 0 and "3 span event(s)" in out,
              f"well-formed trace passes\n{out}")

        code, _ = run_checker(tmp, GOOD, "--expect-span", "outer")
        check(code == 0, "--expect-span finds a present span")
        code, out = run_checker(tmp, GOOD, "--expect-span", "absent")
        check(code == 1 and "absent" in out, "--expect-span flags a missing one")

        bad = copy.deepcopy(GOOD)
        bad["traceEvents"].append({"name": "b", "ph": "B", "pid": 1,
                                   "tid": 1, "ts": 0})
        code, out = run_checker(tmp, bad)
        check(code == 1 and "phase" in out, "unmatched B/E phases rejected")

        bad = copy.deepcopy(GOOD)
        del bad["traceEvents"][1]  # thread_name for tid 1
        code, out = run_checker(tmp, bad)
        check(code == 1 and "thread_name" in out,
              "X events without thread metadata rejected")

        bad = copy.deepcopy(GOOD)
        bad["traceEvents"][2]["dur"] = -1.0
        code, _ = run_checker(tmp, bad)
        check(code == 1, "negative duration rejected")

        bad = copy.deepcopy(GOOD)
        # Starts inside "outer" (ends at 100) but runs past its end.
        bad["traceEvents"].append(x_event("straddle", 1, 50.0, 200.0))
        code, out = run_checker(tmp, bad)
        check(code == 1 and "nesting" in out,
              "overlap without containment rejected")

        bad = copy.deepcopy(GOOD)
        del bad["traceEvents"][0]  # process_name
        code, _ = run_checker(tmp, bad)
        check(code == 1, "missing process_name rejected")

        bad = copy.deepcopy(GOOD)
        bad["traceEvents"][2]["args"]["count"] = -3
        code, _ = run_checker(tmp, bad)
        check(code == 1, "negative span count rejected")

        code, _ = run_checker(tmp, {"traceEvents": []})
        check(code == 1, "missing top-level keys rejected")

    if failures:
        print(f"\n{len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("\nall check_trace_json self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
