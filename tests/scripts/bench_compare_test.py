#!/usr/bin/env python3
"""Tests for scripts/bench_compare.py (run by ctest as
`scripts.bench_compare`).

Covers the regression gate end to end: identical reports pass, an injected
2x time regression is informational by default and fails under
--gate-times, float/int/bool gates fire, missing metrics fail, new metrics
and execution/checkpoint noise do not, per-metric --tol overrides apply,
and tool mismatches exit 2.

Usage: bench_compare_test.py <repo_root>
"""

import copy
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else \
    Path(__file__).resolve().parent.parent.parent
COMPARE = REPO_ROOT / "scripts" / "bench_compare.py"

BASELINE = {
    "schema_version": 2,
    "tool": "unit_bench",
    "results": {
        "methods": {
            "OMP": {"test_error": 0.012345, "terms": 7,
                    "fit_seconds": 2.0, "converged": True},
        },
        "sweep": [
            {"workers": 1, "wall_seconds": 1.0, "speedup_vs_serial": 1.0},
            {"workers": 4, "wall_seconds": 0.3, "speedup_vs_serial": 3.3},
        ],
        "campaign": {
            "attempted": 48,
            "checkpoint": {"flushes": 52},       # scheduling noise: skipped
            "execution": {"tasks_stolen": 9},    # scheduling noise: skipped
        },
        # "timed_out" contains "time" but counts deadline expiries — it must
        # gate exactly like any int, not drift as a time-like metric.
        "server": {"timed_out": 3},
    },
}

failures = []


def check(condition, label):
    print(("ok   " if condition else "FAIL ") + label)
    if not condition:
        failures.append(label)


def run_compare(tmp, baseline, current, *args):
    base_path = Path(tmp) / "baseline.json"
    cur_path = Path(tmp) / "current.json"
    base_path.write_text(json.dumps(baseline), encoding="utf-8")
    cur_path.write_text(json.dumps(current), encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, str(COMPARE), str(base_path), str(cur_path), *args],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    with tempfile.TemporaryDirectory() as tmp:
        # 1. Identical reports pass.
        code, out = run_compare(tmp, BASELINE, BASELINE)
        check(code == 0 and "PASS" in out, f"identical reports pass\n{out}")

        # 2. The injected 2x time regression: informational by default,
        #    a failure under --gate-times (time-tol defaults to 1.5).
        slow = copy.deepcopy(BASELINE)
        slow["results"]["methods"]["OMP"]["fit_seconds"] = 4.0  # 2x slower
        code, out = run_compare(tmp, BASELINE, slow)
        check(code == 0 and "INFO" in out and "x2.00" in out,
              "2x time regression is informational without --gate-times")
        code, out = run_compare(tmp, BASELINE, slow, "--gate-times")
        check(code == 1 and "REGRESSED" in out and "fit_seconds" in out,
              f"--gate-times flags the 2x regression\n{out}")

        # 2b. A generous --time-tol admits the same regression when gated.
        code, _ = run_compare(tmp, BASELINE, slow, "--gate-times",
                              "--time-tol", "2.5")
        check(code == 0, "--time-tol 2.5 admits the 2x regression")

        # 3. Getting 2x *faster* never fails, even gated.
        fast = copy.deepcopy(BASELINE)
        fast["results"]["methods"]["OMP"]["fit_seconds"] = 1.0
        code, _ = run_compare(tmp, BASELINE, fast, "--gate-times")
        check(code == 0, "a 2x speedup passes under --gate-times")

        # 3b. The PR-9 lookahead fix: `timed_out` is an exact int event
        #     counter, not a time-like metric — a drift fails even without
        #     --gate-times and is never reported as informational.
        expiries = copy.deepcopy(BASELINE)
        expiries["results"]["server"]["timed_out"] = 4
        code, out = run_compare(tmp, BASELINE, expiries)
        check(code == 1 and "timed_out" in out and "exact int metric" in out,
              f"timed_out gates as an exact int, not time-like\n{out}")
        code, out = run_compare(tmp, BASELINE, BASELINE)
        check(code == 0 and "timed_out, not gated" not in out,
              "an unchanged timed_out never shows as a time metric")

        # 3c. A per-metric --tol override gates a time-like metric even
        #     without --gate-times (an explicit bound is an opt-in gate),
        #     with the limit 1 + tol.
        code, _ = run_compare(tmp, BASELINE, slow, "--tol",
                              "results.methods.OMP.fit_seconds=0.6")
        check(code == 1, "--tol on a time metric gates without --gate-times")
        code, _ = run_compare(tmp, BASELINE, slow, "--tol",
                              "results.methods.OMP.fit_seconds=1.5")
        check(code == 0, "a wide enough --tol admits the time regression")

        # 4. Science floats are gated tightly; ints and bools exactly.
        drift = copy.deepcopy(BASELINE)
        drift["results"]["methods"]["OMP"]["test_error"] = 0.012347
        code, out = run_compare(tmp, BASELINE, drift)
        check(code == 1 and "test_error" in out,
              "a small float drift beyond rel-tol fails")
        code, _ = run_compare(
            tmp, BASELINE, drift, "--tol",
            "results.methods.OMP.test_error=0.01")
        check(code == 0, "--tol override admits the drift")
        intdrift = copy.deepcopy(BASELINE)
        intdrift["results"]["methods"]["OMP"]["terms"] = 8
        code, out = run_compare(tmp, BASELINE, intdrift)
        check(code == 1 and "terms" in out, "an int count change fails")
        booldrift = copy.deepcopy(BASELINE)
        booldrift["results"]["methods"]["OMP"]["converged"] = False
        code, _ = run_compare(tmp, BASELINE, booldrift)
        check(code == 1, "a bool flip fails")

        # 5. Missing metric fails; new metric passes; scheduling noise in
        #    execution/checkpoint subtrees never gates.
        missing = copy.deepcopy(BASELINE)
        del missing["results"]["methods"]["OMP"]["terms"]
        code, out = run_compare(tmp, BASELINE, missing)
        check(code == 1 and "MISSING" in out, "a dropped metric fails")
        extra = copy.deepcopy(BASELINE)
        extra["results"]["new_metric"] = 1.0
        code, out = run_compare(tmp, BASELINE, extra)
        check(code == 0 and "NEW" in out, "a new metric is reported, passes")
        noisy = copy.deepcopy(BASELINE)
        noisy["results"]["campaign"]["checkpoint"]["flushes"] = 99
        noisy["results"]["campaign"]["execution"]["tasks_stolen"] = 0
        code, _ = run_compare(tmp, BASELINE, noisy)
        check(code == 0, "execution/checkpoint churn is not compared")

        # 6. Speedup/throughput floats are machine-dependent: informational.
        other_machine = copy.deepcopy(BASELINE)
        other_machine["results"]["sweep"][1]["speedup_vs_serial"] = 2.1
        code, _ = run_compare(tmp, BASELINE, other_machine)
        check(code == 0, "speedup drift is informational by default")

        # 7. Tool mismatch is a usage error, not a regression.
        renamed = copy.deepcopy(BASELINE)
        renamed["tool"] = "other_bench"
        code, _ = run_compare(tmp, BASELINE, renamed)
        check(code == 2, "tool mismatch exits 2")

        # 8. --history picks the newest matching report in a directory.
        history = Path(tmp) / "history"
        history.mkdir()
        (history / "other.json").write_text(json.dumps(renamed),
                                            encoding="utf-8")
        (history / "old.json").write_text(json.dumps(BASELINE),
                                          encoding="utf-8")
        cur_path = Path(tmp) / "hist_current.json"
        cur_path.write_text(json.dumps(BASELINE), encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, str(COMPARE), "ignored", str(cur_path),
             "--history", str(history)],
            capture_output=True, text=True, check=False)
        check(proc.returncode == 0 and "old.json" in proc.stdout,
              f"--history resolves the matching baseline\n{proc.stdout}")

    if failures:
        print(f"\n{len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("\nall bench_compare self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
