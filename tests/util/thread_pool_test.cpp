// Work-stealing thread pool: execution, backpressure, retirement, the
// exception backstop, and RSM_THREADS worker-count resolution.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace rsm {
namespace {

TEST(ResolveNumWorkersTest, PositiveRequestIsLiteral) {
  EXPECT_EQ(resolve_num_workers(3, 1), 3);
  EXPECT_EQ(resolve_num_workers(1, 8), 1);
}

TEST(ResolveNumWorkersTest, ZeroConsultsEnvThenFallback) {
  ::unsetenv("RSM_THREADS");
  EXPECT_EQ(resolve_num_workers(0, 5), 5);
  ::setenv("RSM_THREADS", "7", 1);
  EXPECT_EQ(resolve_num_workers(0, 5), 7);
  ::setenv("RSM_THREADS", "not-a-number", 1);
  EXPECT_EQ(resolve_num_workers(0, 5), 5);
  ::setenv("RSM_THREADS", "0", 1);
  EXPECT_EQ(resolve_num_workers(0, 5), 5);
  ::setenv("RSM_THREADS", "-3", 1);
  EXPECT_EQ(resolve_num_workers(0, 5), 5);
  ::setenv("RSM_THREADS", "4x", 1);
  EXPECT_EQ(resolve_num_workers(0, 5), 5);
  ::unsetenv("RSM_THREADS");
}

TEST(ThreadPoolTest, ExecutesEveryTaskExactlyOnce) {
  ThreadPool::Options options;
  options.num_threads = 4;
  ThreadPool pool(options);
  EXPECT_EQ(pool.num_workers(), 4);
  EXPECT_EQ(pool.active_workers(), 4);

  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  for (int i = 0; i < kTasks; ++i)
    pool.submit([&hits, i] { hits[static_cast<std::size_t>(i)]++; });
  pool.wait_idle();
  for (int i = 0; i < kTasks; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;

  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.task_exceptions, 0u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool::Options options;
  options.num_threads = 2;
  ThreadPool pool(options);
  pool.wait_idle();
  EXPECT_EQ(pool.stats().executed, 0u);
}

TEST(ThreadPoolTest, TinyQueueBackpressureLosesNothing) {
  ThreadPool::Options options;
  options.num_threads = 2;
  options.queue_capacity = 1;  // submit() must block and retry, not drop
  ThreadPool pool(options);
  std::atomic<int> executed{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i)
    pool.submit([&executed] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      executed++;
    });
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolTest, ThrowingTaskIsSwallowedAndCounted) {
  ThreadPool::Options options;
  options.num_threads = 2;
  ThreadPool pool(options);
  std::atomic<int> after{0};
  pool.submit([] { throw std::runtime_error("task bug"); });
  pool.submit([&after] { after++; });
  pool.wait_idle();
  EXPECT_EQ(after.load(), 1);
  EXPECT_EQ(pool.stats().task_exceptions, 1u);
  EXPECT_EQ(pool.stats().executed, 2u);
}

TEST(ThreadPoolTest, CurrentWorkerIndexOnlyInsideTasks) {
  ThreadPool::Options options;
  options.num_threads = 3;
  ThreadPool pool(options);
  EXPECT_EQ(pool.current_worker_index(), -1);  // foreign thread
  std::atomic<bool> in_range{true};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&pool, &in_range] {
      const int w = pool.current_worker_index();
      if (w < 0 || w >= pool.num_workers()) in_range = false;
    });
  }
  pool.wait_idle();
  EXPECT_TRUE(in_range.load());
}

TEST(ThreadPoolTest, RetiredWorkerStopsClaimingAndSiblingsDrain) {
  ThreadPool::Options options;
  options.num_threads = 3;
  ThreadPool pool(options);
  // Retire the first worker that runs a task, then make sure a full batch
  // still executes and the retired worker claims none of it.
  std::atomic<int> retired_index{-1};
  pool.submit([&pool, &retired_index] {
    if (pool.retire_current_worker())
      retired_index = pool.current_worker_index();
  });
  pool.wait_idle();
  ASSERT_GE(retired_index.load(), 0);
  EXPECT_EQ(pool.active_workers(), 2);

  std::atomic<int> executed{0};
  std::atomic<bool> retired_ran{false};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&pool, &executed, &retired_ran, &retired_index] {
      if (pool.current_worker_index() == retired_index.load())
        retired_ran = true;
      executed++;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 100);
  EXPECT_FALSE(retired_ran.load());
  const std::vector<ThreadPool::WorkerStats> workers = pool.worker_stats();
  ASSERT_EQ(workers.size(), 3u);
  EXPECT_TRUE(workers[static_cast<std::size_t>(retired_index.load())].retired);
}

TEST(ThreadPoolTest, LastActiveWorkerRefusesToRetire) {
  ThreadPool::Options options;
  options.num_threads = 2;
  ThreadPool pool(options);
  std::atomic<int> retire_successes{0};
  std::atomic<int> retire_refusals{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &retire_successes, &retire_refusals] {
      if (pool.retire_current_worker())
        retire_successes++;
      else
        retire_refusals++;
    });
  }
  pool.wait_idle();
  // Exactly one of the two workers may retire; the survivor refuses every
  // time so the queues always drain.
  EXPECT_EQ(retire_successes.load(), 1);
  EXPECT_EQ(retire_refusals.load(), 7);
  EXPECT_EQ(pool.active_workers(), 1);
}

TEST(ThreadPoolTest, RetireFromForeignThreadRefuses) {
  ThreadPool::Options options;
  options.num_threads = 2;
  ThreadPool pool(options);
  EXPECT_FALSE(pool.retire_current_worker());
  EXPECT_EQ(pool.active_workers(), 2);
}

TEST(ThreadPoolTest, SubmitFromInsideTasksWorks) {
  ThreadPool::Options options;
  options.num_threads = 4;
  options.queue_capacity = 512;
  ThreadPool pool(options);
  std::atomic<int> executed{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&pool, &executed] {
      executed++;
      pool.submit([&executed] { executed++; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool::Options options;
    options.num_threads = 2;
    ThreadPool pool(options);
    for (int i = 0; i < 100; ++i)
      pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
        executed++;
      });
    // No wait_idle(): shutdown itself must drain every queued task.
  }
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPoolTest, TelemetryIsDeterministicWithOneWorker) {
  ThreadPool::Options options;
  options.num_threads = 1;
  ThreadPool pool(options);
  // Gate the single worker inside a task so the queue depth behind it is
  // fully deterministic.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  pool.submit([&started, &release] {
    started = true;
    while (!release)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  });
  while (!started) std::this_thread::yield();
  for (int i = 0; i < 8; ++i) pool.submit([] {});
  release = true;
  pool.wait_idle();

  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 9u);
  EXPECT_EQ(stats.executed, 9u);
  EXPECT_EQ(stats.stolen, 0u);           // nobody to steal from
  EXPECT_EQ(stats.queue_highwater, 8u);  // the 8 tasks parked behind the gate
  EXPECT_EQ(stats.backpressure_stalls, 0u);

  const std::vector<ThreadPool::WorkerStats> workers = pool.worker_stats();
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0].executed, 9u);
  EXPECT_EQ(workers[0].stolen, 0u);
  EXPECT_FALSE(workers[0].retired);
  EXPECT_GT(workers[0].busy_seconds, 0.0);  // the gated task slept in task()
}

TEST(ThreadPoolTest, PerWorkerTelemetrySumsToPoolTotals) {
  ThreadPool::Options options;
  options.num_threads = 4;
  ThreadPool pool(options);
  constexpr int kTasks = 400;
  for (int i = 0; i < kTasks; ++i)
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    });
  pool.wait_idle();

  const ThreadPool::Stats stats = pool.stats();
  const std::vector<ThreadPool::WorkerStats> workers = pool.worker_stats();
  ASSERT_EQ(workers.size(), 4u);
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;
  for (const ThreadPool::WorkerStats& w : workers) {
    executed += w.executed;
    stolen += w.stolen;
    EXPECT_GE(w.busy_seconds, 0.0);
    EXPECT_GE(w.idle_seconds, 0.0);
  }
  EXPECT_EQ(executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(executed, stats.executed);
  EXPECT_EQ(stolen, stats.stolen);
  EXPECT_GE(stats.queue_highwater, 1u);
}

TEST(ThreadPoolTest, BackpressureStallsAreCounted) {
  ThreadPool::Options options;
  options.num_threads = 2;
  options.queue_capacity = 1;
  ThreadPool pool(options);
  // Both workers sleep for a long time; with one queue slot each, the
  // fifth submission must stall until a worker frees a slot.
  for (int i = 0; i < 12; ++i)
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });
  pool.wait_idle();
  EXPECT_GE(pool.stats().backpressure_stalls, 1u);
  EXPECT_EQ(pool.stats().executed, 12u);
}

TEST(ThreadPoolTest, WorkStealingKeepsManyWorkersBusy) {
  ThreadPool::Options options;
  options.num_threads = 4;
  ThreadPool pool(options);
  std::set<int> seen;
  Mutex seen_mutex{"test.seen"};
  for (int i = 0; i < 400; ++i) {
    pool.submit([&pool, &seen, &seen_mutex] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      MutexLock lock(seen_mutex);
      seen.insert(pool.current_worker_index());
    });
  }
  pool.wait_idle();
  // All four workers should have participated (round-robin placement alone
  // guarantees this; stealing guarantees it even under skew).
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace rsm
