#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace rsm {
namespace {

TEST(WallTimerTest, SecondsIsMonotonic) {
  WallTimer timer;
  const double a = timer.seconds();
  const double b = timer.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  // millis() is a later clock read, so it dominates the earlier seconds().
  EXPECT_GE(timer.millis(), b * 1e3);
}

TEST(WallTimerTest, LapResetsLapOriginButNotTotal) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double lap1 = timer.lap();
  EXPECT_GE(lap1, 0.009);
  // The lap origin moved to "now", so an immediate lap is near zero...
  const double lap2 = timer.lap();
  EXPECT_LT(lap2, lap1);
  // ...while the overall origin kept accumulating.
  EXPECT_GE(timer.seconds(), lap1);
}

TEST(WallTimerTest, LapsSumToTotal) {
  WallTimer timer;
  double laps = 0;
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    laps += timer.lap();
  }
  // Total >= sum of laps (the final lap() left a still-open lap interval).
  EXPECT_GE(timer.seconds() + 1e-9, laps);
  EXPECT_GE(laps, 0.005);
}

TEST(WallTimerTest, RestartResetsBothOrigins) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.restart();
  EXPECT_LT(timer.seconds(), 0.005);
  EXPECT_LT(timer.lap(), 0.005);
}

TEST(ThreadCpuTimerTest, MeasuresCpuBurn) {
  ThreadCpuTimer timer;
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) x = x * 1.0000001 + 1e-12;
  EXPECT_GT(timer.seconds(), 0.0);
}

TEST(ThreadCpuTimerTest, SleepBurnsLittleCpu) {
  ThreadCpuTimer cpu;
  WallTimer wall;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Wall time advanced ~50ms; thread CPU time should be far less.
  EXPECT_GE(wall.seconds(), 0.045);
  EXPECT_LT(cpu.seconds(), 0.030);
}

TEST(ThreadCpuTimerTest, RestartResetsOrigin) {
  ThreadCpuTimer timer;
  volatile double x = 1.0;
  for (int i = 0; i < 1000000; ++i) x = x * 1.0000001 + 1e-12;
  const double before = timer.seconds();
  timer.restart();
  EXPECT_LT(timer.seconds(), before);
}

TEST(ThreadCpuTimerTest, NowIsMonotonicNonDecreasing) {
  const double a = ThreadCpuTimer::now();
  const double b = ThreadCpuTimer::now();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace rsm
