#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/common.hpp"

namespace rsm {
namespace {

CliArgs standard_args() {
  CliArgs args;
  args.add_option("samples", "100", "number of samples");
  args.add_option("sigma", "1.5", "noise sigma");
  args.add_flag("full", "run at full scale");
  return args;
}

void parse(CliArgs& args, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsApply) {
  CliArgs args = standard_args();
  parse(args, {});
  EXPECT_EQ(args.get_int("samples"), 100);
  EXPECT_DOUBLE_EQ(args.get_double("sigma"), 1.5);
  EXPECT_FALSE(args.get_flag("full"));
}

TEST(Cli, SpaceSeparatedValues) {
  CliArgs args = standard_args();
  parse(args, {"--samples", "250"});
  EXPECT_EQ(args.get_int("samples"), 250);
}

TEST(Cli, EqualsSeparatedValues) {
  CliArgs args = standard_args();
  parse(args, {"--sigma=0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("sigma"), 0.25);
}

TEST(Cli, FlagSet) {
  CliArgs args = standard_args();
  parse(args, {"--full"});
  EXPECT_TRUE(args.get_flag("full"));
}

TEST(Cli, UnknownOptionThrows) {
  CliArgs args = standard_args();
  EXPECT_THROW(parse(args, {"--bogus", "1"}), Error);
}

TEST(Cli, MissingValueThrows) {
  CliArgs args = standard_args();
  EXPECT_THROW(parse(args, {"--samples"}), Error);
}

TEST(Cli, FlagWithValueThrows) {
  CliArgs args = standard_args();
  EXPECT_THROW(parse(args, {"--full=yes"}), Error);
}

TEST(Cli, NonIntegerThrows) {
  CliArgs args = standard_args();
  parse(args, {"--samples", "abc"});
  EXPECT_THROW(static_cast<void>(args.get_int("samples")), Error);
}

TEST(Cli, HelpRequested) {
  CliArgs args = standard_args();
  parse(args, {"--help"});
  EXPECT_TRUE(args.help_requested());
  const std::string usage = args.usage("prog");
  EXPECT_NE(usage.find("--samples"), std::string::npos);
  EXPECT_NE(usage.find("number of samples"), std::string::npos);
}

TEST(Cli, DuplicateDeclarationThrows) {
  CliArgs args;
  args.add_option("x", "1", "");
  EXPECT_THROW(args.add_option("x", "2", ""), Error);
  EXPECT_THROW(args.add_flag("x", ""), Error);
}

TEST(Cli, UndeclaredGetThrows) {
  CliArgs args = standard_args();
  parse(args, {});
  EXPECT_THROW(static_cast<void>(args.get("nope")), Error);
}

}  // namespace
}  // namespace rsm
