// Assertion-macro semantics, the structured error taxonomy, and the
// deterministic fault injector.
#include <string>

#include <gtest/gtest.h>

#include "util/common.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace rsm {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    RSM_CHECK_MSG(1 + 1 == 3, "math broke: " << 42);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos);
    EXPECT_NE(what.find("math broke: 42"), std::string::npos);
  }
}

TEST(Dcheck, FiresExactlyInDebugBuilds) {
  // RSM_DCHECK must throw in debug builds and must not even EVALUATE its
  // argument in release builds (it is in hot loops).
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return true;
  };
  RSM_DCHECK(touch());
  EXPECT_EQ(evaluations, kDchecksEnabled ? 1 : 0);

  if (kDchecksEnabled) {
    EXPECT_THROW(RSM_DCHECK(false), Error);
  } else {
    EXPECT_NO_THROW(RSM_DCHECK(false));
  }
}

TEST(ErrorTaxonomy, CodesAndNames) {
  EXPECT_STREQ(error_code_name(ErrorCode::kSingularMatrix),
               "singular-matrix");
  EXPECT_STREQ(error_code_name(ErrorCode::kNoConvergence), "no-convergence");
  EXPECT_STREQ(error_code_name(ErrorCode::kNumericalDomain),
               "numerical-domain");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnclassified), "unclassified");
}

TEST(ErrorTaxonomy, CarriesSampleAndStrategyContext) {
  const SingularMatrixError e("zero pivot", "gmin-stepping", 17);
  EXPECT_EQ(e.code(), ErrorCode::kSingularMatrix);
  EXPECT_EQ(e.strategy(), "gmin-stepping");
  EXPECT_EQ(e.sample(), 17);
  const std::string what = e.what();
  EXPECT_NE(what.find("singular-matrix"), std::string::npos);
  EXPECT_NE(what.find("gmin-stepping"), std::string::npos);
  EXPECT_NE(what.find("17"), std::string::npos);
  EXPECT_NE(what.find("zero pivot"), std::string::npos);
}

TEST(ErrorTaxonomy, ConvergenceErrorRecordsIterations) {
  const ConvergenceError e("stalled", 123, "newton");
  EXPECT_EQ(e.code(), ErrorCode::kNoConvergence);
  EXPECT_EQ(e.iterations(), 123);
}

TEST(ErrorTaxonomy, ClassifyMapsToCodes) {
  EXPECT_EQ(classify_error(SingularMatrixError("x")),
            ErrorCode::kSingularMatrix);
  EXPECT_EQ(classify_error(ConvergenceError("x", 1)),
            ErrorCode::kNoConvergence);
  EXPECT_EQ(classify_error(NumericalDomainError("x")),
            ErrorCode::kNumericalDomain);
  EXPECT_EQ(classify_error(Error("legacy")), ErrorCode::kUnclassified);
  EXPECT_EQ(classify_error(std::runtime_error("foreign")),
            ErrorCode::kUnclassified);
}

TEST(ErrorTaxonomy, SubclassesCatchAsError) {
  // Every taxonomy member must remain catchable as rsm::Error so legacy
  // call sites keep working.
  EXPECT_THROW(throw SingularMatrixError("x"), Error);
  EXPECT_THROW(throw ConvergenceError("x", 1), Error);
  EXPECT_THROW(throw NumericalDomainError("x"), Error);
}

TEST(FaultInjector, DisabledNeverFaults) {
  const FaultInjector off;
  EXPECT_FALSE(off.enabled());
  for (Index k = 0; k < 100; ++k) {
    EXPECT_EQ(off.kind(k), FaultKind::kNone);
    EXPECT_NO_THROW(off.throw_if_faulted(k, 0));
  }
}

TEST(FaultInjector, DeterministicAndSeedDependent) {
  const FaultInjector a({.fault_rate = 0.1, .seed = 7});
  const FaultInjector b({.fault_rate = 0.1, .seed = 7});
  const FaultInjector c({.fault_rate = 0.1, .seed = 8});
  int differences = 0;
  for (Index k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.kind(k), b.kind(k));
    EXPECT_EQ(a.is_persistent(k), b.is_persistent(k));
    if (a.kind(k) != c.kind(k)) ++differences;
  }
  EXPECT_GT(differences, 0);  // a different seed gives a different plan
}

TEST(FaultInjector, RateIsApproximatelyHonored) {
  const FaultInjector inj({.fault_rate = 0.05, .seed = 42});
  int faulted = 0;
  for (Index k = 0; k < 10000; ++k)
    if (inj.kind(k) != FaultKind::kNone) ++faulted;
  EXPECT_GT(faulted, 300);  // ~500 expected
  EXPECT_LT(faulted, 700);
}

TEST(FaultInjector, TransientFaultsClearOnRetryPersistentDoNot) {
  const FaultInjector inj(
      {.fault_rate = 0.3, .persistent_fraction = 0.5, .seed = 3});
  for (Index k = 0; k < 500; ++k) {
    if (inj.kind(k) == FaultKind::kNone) {
      EXPECT_FALSE(inj.should_fail(k, 0));
      continue;
    }
    EXPECT_TRUE(inj.should_fail(k, 0));  // first attempt always fails
    EXPECT_EQ(inj.should_fail(k, 1), inj.is_persistent(k));
    EXPECT_EQ(inj.should_fail(k, 5), inj.is_persistent(k));
  }
}

TEST(FaultInjector, ThrowsTheAdvertisedTaxonomyType) {
  const FaultInjector inj({.fault_rate = 1.0, .seed = 11});
  bool saw_singular = false;
  bool saw_stall = false;
  for (Index k = 0; k < 100; ++k) {
    try {
      inj.throw_if_faulted(k, 0);
      FAIL() << "fault_rate 1.0 must fault every sample";
    } catch (const StructuredError& e) {
      EXPECT_EQ(e.sample(), k);
      EXPECT_EQ(e.strategy(), "fault-injection");
      if (inj.kind(k) == FaultKind::kSingularSolve) {
        EXPECT_EQ(e.code(), ErrorCode::kSingularMatrix);
        saw_singular = true;
      } else {
        EXPECT_EQ(e.code(), ErrorCode::kNoConvergence);
        saw_stall = true;
      }
    }
  }
  EXPECT_TRUE(saw_singular);
  EXPECT_TRUE(saw_stall);
}

}  // namespace
}  // namespace rsm
