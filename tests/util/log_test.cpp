#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace rsm {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kInfo);
  }
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogTest, BelowThresholdDoesNotEvaluateStream) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  RSM_DEBUG("value " << expensive());
  RSM_INFO("value " << expensive());
  EXPECT_EQ(evaluations, 0);  // the macro short-circuits
  RSM_ERROR("value " << expensive());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, EmitDoesNotThrow) {
  set_log_level(LogLevel::kDebug);
  EXPECT_NO_THROW(RSM_DEBUG("debug " << 1));
  EXPECT_NO_THROW(RSM_INFO("info"));
  EXPECT_NO_THROW(RSM_WARN("warn " << 2.5));
  EXPECT_NO_THROW(RSM_ERROR("error"));
}

TEST_F(LogTest, SinkCapturesLevelAndRawMessage) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  RSM_INFO("hello " << 42);
  RSM_WARN("careful");
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "hello 42");  // no timestamp/tag prefix
  EXPECT_EQ(captured[1].first, LogLevel::kWarn);
  EXPECT_EQ(captured[1].second, "careful");
}

TEST_F(LogTest, SinkRespectsLevelThreshold) {
  int emissions = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++emissions; });
  set_log_level(LogLevel::kError);
  RSM_DEBUG("dropped");
  RSM_INFO("dropped");
  RSM_WARN("dropped");
  RSM_ERROR("kept");
  EXPECT_EQ(emissions, 1);
}

TEST_F(LogTest, NullSinkRestoresStderrWithoutCapturing) {
  int emissions = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++emissions; });
  RSM_INFO("captured");
  set_log_sink(nullptr);
  RSM_INFO("to stderr");
  EXPECT_EQ(emissions, 1);
}

TEST_F(LogTest, FormatLinePrefixesTimestampAndTag) {
  EXPECT_EQ(detail::format_log_line(LogLevel::kInfo, 12.3456, "msg"),
            "[   12.346 INFO ] msg");
  EXPECT_EQ(detail::format_log_line(LogLevel::kWarn, 0.0, "x"),
            "[    0.000 WARN ] x");
  EXPECT_EQ(detail::format_log_line(LogLevel::kDebug, 1.0, "d"),
            "[    1.000 DEBUG] d");
  EXPECT_EQ(detail::format_log_line(LogLevel::kError, 2.5, "e"),
            "[    2.500 ERROR] e");
}

TEST_F(LogTest, UptimeIsMonotonicNonDecreasing) {
  const double a = detail::log_uptime_seconds();
  const double b = detail::log_uptime_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST_F(LogTest, ConcurrentEmissionIsSerialized) {
  int emissions = 0;  // mutated only under the log mutex, via the sink
  set_log_sink([&](LogLevel, const std::string&) { ++emissions; });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) RSM_INFO("line " << i);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(emissions, kThreads * kPerThread);
}

}  // namespace
}  // namespace rsm
