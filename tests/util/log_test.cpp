#include "util/log.hpp"

#include <gtest/gtest.h>

namespace rsm {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogTest, BelowThresholdDoesNotEvaluateStream) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  RSM_DEBUG("value " << expensive());
  RSM_INFO("value " << expensive());
  EXPECT_EQ(evaluations, 0);  // the macro short-circuits
  RSM_ERROR("value " << expensive());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, EmitDoesNotThrow) {
  set_log_level(LogLevel::kDebug);
  EXPECT_NO_THROW(RSM_DEBUG("debug " << 1));
  EXPECT_NO_THROW(RSM_INFO("info"));
  EXPECT_NO_THROW(RSM_WARN("warn " << 2.5));
  EXPECT_NO_THROW(RSM_ERROR("error"));
}

}  // namespace
}  // namespace rsm
