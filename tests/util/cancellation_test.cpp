// Cooperative stop machinery: tokens, deadlines, the ambient scoped control
// stack, and end-to-end interruption of an instrumented solver loop.
#include <gtest/gtest.h>

#include "core/omp.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/cancellation.hpp"
#include "util/errors.hpp"

namespace rsm {
namespace {

TEST(CancellationTokenTest, DefaultTokenNeverCancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTokenTest, SourceCancelPropagatesToEveryToken) {
  CancellationSource source;
  const CancellationToken a = source.token();
  const CancellationToken b = source.token();
  EXPECT_FALSE(source.cancel_requested());
  EXPECT_FALSE(a.cancelled());
  source.request_cancel();
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
}

TEST(DeadlineTest, DefaultIsUnlimited) {
  const Deadline d;
  EXPECT_FALSE(d.is_limited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 1e17);
}

TEST(DeadlineTest, NonPositiveBudgetExpiresImmediately) {
  EXPECT_TRUE(Deadline::after_seconds(0).expired());
  EXPECT_TRUE(Deadline::after_seconds(-1).expired());
  EXPECT_FALSE(Deadline::after_seconds(3600).expired());
}

TEST(DeadlineTest, SoonerPrefersTheLimitedDeadline) {
  const Deadline limited = Deadline::after_seconds(10);
  const Deadline unlimited = Deadline::unlimited();
  EXPECT_TRUE(Deadline::sooner(limited, unlimited).is_limited());
  EXPECT_TRUE(Deadline::sooner(unlimited, limited).is_limited());
  EXPECT_FALSE(Deadline::sooner(unlimited, unlimited).is_limited());
  const Deadline tight = Deadline::after_seconds(-1);
  EXPECT_TRUE(Deadline::sooner(tight, limited).expired());
  EXPECT_TRUE(Deadline::sooner(limited, tight).expired());
}

TEST(ScopedRunControlTest, NoScopeMeansNoop) {
  EXPECT_FALSE(cooperative_stop_requested());
  EXPECT_NO_THROW(check_cooperative_stop("test.noscope"));
}

TEST(ScopedRunControlTest, CancelledScopeThrowsStructuredError) {
  CancellationSource source;
  source.request_cancel();
  ScopedRunControl scope({source.token(), Deadline::unlimited()});
  EXPECT_TRUE(cooperative_stop_requested());
  try {
    check_cooperative_stop("test.site", 17);
    FAIL() << "check should have thrown";
  } catch (const DeadlineExceededError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
    EXPECT_NE(std::string(e.what()).find("test.site"), std::string::npos);
  }
}

TEST(ScopedRunControlTest, ExpiredDeadlineThrows) {
  ScopedRunControl scope({CancellationToken{}, Deadline::after_seconds(-1)});
  EXPECT_TRUE(cooperative_stop_requested());
  EXPECT_THROW(check_cooperative_stop("test.deadline"),
               DeadlineExceededError);
}

TEST(ScopedRunControlTest, ScopesNestAndOuterIsHonored) {
  CancellationSource outer;
  ScopedRunControl outer_scope({outer.token(), Deadline::unlimited()});
  {
    // Inner scope is healthy; the cancelled *outer* scope must still stop
    // the nested work.
    ScopedRunControl inner({CancellationToken{}, Deadline::unlimited()});
    EXPECT_NO_THROW(check_cooperative_stop("test.nested"));
    outer.request_cancel();
    EXPECT_THROW(check_cooperative_stop("test.nested"),
                 DeadlineExceededError);
  }
  EXPECT_THROW(check_cooperative_stop("test.outer"), DeadlineExceededError);
}

TEST(ScopedRunControlTest, ScopeRemovalRestoresPreviousState) {
  {
    ScopedRunControl scope({CancellationToken{}, Deadline::after_seconds(-1)});
    EXPECT_TRUE(cooperative_stop_requested());
  }
  EXPECT_FALSE(cooperative_stop_requested());
  EXPECT_NO_THROW(check_cooperative_stop("test.after"));
}

TEST(ScopedRunControlTest, ClassifierMapsToDeadlineExceeded) {
  try {
    throw DeadlineExceededError("watchdog", "test");
  } catch (const std::exception& e) {
    EXPECT_EQ(classify_error(e), ErrorCode::kDeadlineExceeded);
  }
}

TEST(CooperativeSolverTest, GreedyFitUnwindsUnderCancelledScope) {
  // The OMP greedy loop polls check_cooperative_stop ambiently: a cancelled
  // scope installed by a caller (the campaign layer in production) must
  // interrupt the fit without any solver-option plumbing.
  Rng rng(3);
  const Matrix g = monte_carlo_normal(40, 25, rng);
  std::vector<Real> f(40);
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = g(static_cast<Index>(i), 0) + 0.5 * g(static_cast<Index>(i), 3);

  const OmpSolver solver;
  {
    CancellationSource source;
    source.request_cancel();
    ScopedRunControl scope({source.token(), Deadline::unlimited()});
    EXPECT_THROW((void)solver.fit_path(g, f, 10), DeadlineExceededError);
  }
  // Outside the scope the same fit succeeds.
  const SolverPath path = solver.fit_path(g, f, 10);
  EXPECT_GT(path.num_steps(), 0);
}

}  // namespace
}  // namespace rsm
