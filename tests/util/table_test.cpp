#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/common.hpp"

namespace rsm {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, PadsColumnsToWidestCell) {
  Table t({"h", "x"});
  t.add_row({"a-very-long-cell", "1"});
  const std::string s = t.render();
  // Every rendered line has equal length.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(Table, OverlongRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), Error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, Error);
}

TEST(Table, RuleInsertsSeparator) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.render();
  // header rule + top + bottom + inserted = 4 horizontal lines.
  std::size_t count = 0, pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++count;
    pos += 3;
  }
  EXPECT_EQ(count, 4u);
}

TEST(Formatting, Sig) {
  EXPECT_EQ(format_sig(1234.5678, 4), "1235");
  EXPECT_EQ(format_sig(0.00012345, 3), "0.000123");
}

TEST(Formatting, Pct) {
  EXPECT_EQ(format_pct(0.0421), "4.21%");
  EXPECT_EQ(format_pct(1.0, 0), "100%");
}

TEST(Formatting, Seconds) {
  EXPECT_EQ(format_seconds(5e-7), "0.5 us");
  EXPECT_EQ(format_seconds(0.0123), "12.3 ms");
  EXPECT_EQ(format_seconds(42.0), "42.0 s");
  EXPECT_EQ(format_seconds(3600.0), "60.0 min");
  EXPECT_EQ(format_seconds(3 * 3600.0), "3.0 h");
  EXPECT_EQ(format_seconds(742106.0), "8.6 days");
  EXPECT_EQ(format_seconds(-1.0), "-");
}

}  // namespace
}  // namespace rsm
