#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/common.hpp"

namespace rsm {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "rsm_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"k", "error"});
    csv.write_row(std::vector<std::string>{"100", "0.05"});
    csv.write_row(std::vector<double>{200, 0.025});
  }
  const std::string content = slurp(path_);
  EXPECT_EQ(content, "k,error\n100,0.05\n200,0.025\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"name", "note"});
    csv.write_row(std::vector<std::string>{"a,b", "say \"hi\""});
  }
  const std::string content = slurp(path_);
  EXPECT_NE(content.find("\"a,b\""), std::string::npos);
  EXPECT_NE(content.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST_F(CsvTest, WrongArityThrows) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.write_row({"only-one"}), Error);
}

TEST_F(CsvTest, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), Error);
}

}  // namespace
}  // namespace rsm
