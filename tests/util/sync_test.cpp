// Tests for util/sync.hpp: the annotated mutex wrappers and the lock-rank
// deadlock checker. The rank tests install a recording violation handler
// (record-and-continue) so a deliberate inversion is observed as data
// instead of a process abort — the checker's report must carry both lock
// names and the full held-lock stack, deterministically, on first
// occurrence.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace rsm {
namespace {

/// Copies of every violation the recording handler saw. Plain function
/// pointers cannot capture, so the sink is file-scope state; tests that use
/// it run the offending acquisitions on one thread and clear first.
struct RecordedViolation {
  std::string acquiring_name;
  int acquiring_rank = 0;
  bool recursive = false;
  std::vector<std::pair<std::string, int>> held;
};

std::vector<RecordedViolation>& recorded() {
  static std::vector<RecordedViolation> sink;
  return sink;
}

void recording_handler(const RankViolation& violation) {
  RecordedViolation copy;
  copy.acquiring_name = violation.acquiring_name;
  copy.acquiring_rank = violation.acquiring_rank;
  copy.recursive = violation.recursive;
  for (const HeldLockInfo& held : violation.held)
    copy.held.emplace_back(held.name, held.rank);
  recorded().push_back(std::move(copy));
}

/// Installs the recording handler for one test body and restores the
/// previous handler (the default abort) on the way out.
class RecordingHandlerScope {
 public:
  RecordingHandlerScope() : previous_(set_rank_violation_handler(
                                &recording_handler)) {
    recorded().clear();
  }
  ~RecordingHandlerScope() { set_rank_violation_handler(previous_); }

 private:
  RankViolationHandler previous_;
};

TEST(SyncTest, MutexLockRoundTrip) {
  Mutex mutex{"test.roundtrip", 100};
  {
    MutexLock lock(mutex);
    // Exclusivity: a try_lock from another thread must fail while held.
    bool acquired = true;
    std::thread probe([&] { acquired = mutex.try_lock(); });
    probe.join();
    EXPECT_FALSE(acquired);
  }
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(SyncTest, MutexExposesNameAndRank) {
  Mutex mutex{"test.named", 42};
  EXPECT_STREQ(mutex.name(), "test.named");
  EXPECT_EQ(mutex.rank(), 42);
  Mutex defaulted;
  EXPECT_EQ(defaulted.rank(), lock_rank::kDefault);
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mutex{"test.shared", 100};
  ReaderLock outer(mutex);
  bool reader_ok = false;
  bool writer_blocked = false;
  std::thread probe([&] {
    mutex.lock_shared();  // second reader: must not block
    reader_ok = true;
    mutex.unlock_shared();
    writer_blocked = !mutex.try_lock();  // writer: must fail under a reader
  });
  probe.join();
  EXPECT_TRUE(reader_ok);
  EXPECT_TRUE(writer_blocked);
}

TEST(SyncTest, WriterLockExcludesReaders) {
  SharedMutex mutex{"test.shared.writer", 100};
  WriterLock writer(mutex);
  bool reader_blocked = false;
  std::thread probe([&] {
    // try_lock_shared is not exposed; exclusive try_lock failing under the
    // writer demonstrates exclusion without risking a deadlock here.
    reader_blocked = !mutex.try_lock();
  });
  probe.join();
  EXPECT_TRUE(reader_blocked);
}

TEST(SyncTest, CondVarWaitForPredicate) {
  Mutex mutex{"test.condvar", 100};
  CondVar cv;
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(mutex);
    ready = true;
    cv.notify_one();
  });
  bool observed = false;
  {
    MutexLock lock(mutex);
    observed = cv.wait_for(lock, std::chrono::seconds(30),
                           [&]() { return ready; });
  }
  signaller.join();
  EXPECT_TRUE(observed);
}

TEST(SyncRankTest, ChecksCompiledIn) {
  // The CMake default (RSM_LOCK_RANKS=ON) forces the checker into every
  // build type; if this fails the rank tests below are vacuous.
  EXPECT_TRUE(kLockRankChecksEnabled);
}

TEST(SyncRankTest, AscendingAcquisitionIsSilent) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  RecordingHandlerScope scope;
  Mutex a{"test.rank.a", 10};
  Mutex b{"test.rank.b", 20};
  Mutex c{"test.rank.c", 30};
  {
    MutexLock la(a);
    MutexLock lb(b);
    MutexLock lc(c);
    const std::vector<HeldLockInfo> held = held_locks_for_testing();
    ASSERT_EQ(held.size(), 3u);
    EXPECT_STREQ(held[0].name, "test.rank.a");
    EXPECT_STREQ(held[2].name, "test.rank.c");
  }
  EXPECT_TRUE(recorded().empty());
  EXPECT_TRUE(held_locks_for_testing().empty());
}

TEST(SyncRankTest, DeliberateInversionIsCaughtDeterministically) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  RecordingHandlerScope scope;
  Mutex a{"test.inversion.a", 10};
  Mutex b{"test.inversion.b", 20};
  {
    // A -> B: the sanctioned order. Must be silent.
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_TRUE(recorded().empty());
  {
    // B -> A: the inversion. Must be reported on the very first occurrence
    // (no unlucky interleaving required) with both names and the stack.
    MutexLock lb(b);
    MutexLock la(a);
    ASSERT_EQ(recorded().size(), 1u);
    const RecordedViolation& v = recorded().front();
    EXPECT_EQ(v.acquiring_name, "test.inversion.a");
    EXPECT_EQ(v.acquiring_rank, 10);
    EXPECT_FALSE(v.recursive);
    ASSERT_EQ(v.held.size(), 1u);
    EXPECT_EQ(v.held[0].first, "test.inversion.b");
    EXPECT_EQ(v.held[0].second, 20);
  }
  // Record-and-continue: the stack unwound cleanly after the violation.
  EXPECT_TRUE(held_locks_for_testing().empty());
}

TEST(SyncRankTest, EqualRankAcquisitionIsAViolation) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  RecordingHandlerScope scope;
  // Two kDefault locks: strictly-increasing means equal ranks cannot nest —
  // two threads interleaving them in opposite orders is a deadlock.
  Mutex a{"test.equal.a"};
  Mutex b{"test.equal.b"};
  MutexLock la(a);
  MutexLock lb(b);
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded().front().acquiring_name, "test.equal.b");
}

TEST(SyncRankTest, RecursiveAcquisitionIsFlagged) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  RecordingHandlerScope scope;
  Mutex a{"test.recursive", 10};
  a.lock();
  // Same mutex again: try_lock fails (non-recursive std::mutex) but the
  // checker must flag the attempt itself as recursive before that.
  EXPECT_FALSE(a.try_lock());
  a.unlock();
  ASSERT_GE(recorded().size(), 1u);
  EXPECT_TRUE(recorded().front().recursive);
  EXPECT_TRUE(held_locks_for_testing().empty());
}

TEST(SyncRankTest, FailedTryLockLeavesNoStackEntry) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  RecordingHandlerScope scope;
  Mutex a{"test.trylock", 10};
  MutexLock hold(a);
  std::thread probe([&] {
    EXPECT_FALSE(a.try_lock());
    // The failed attempt must not leave a phantom held-lock entry that
    // would poison this thread's later rank checks.
    EXPECT_TRUE(held_locks_for_testing().empty());
  });
  probe.join();
}

TEST(SyncRankTest, RanksArePerThread) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  RecordingHandlerScope scope;
  Mutex high{"test.perthread.high", 90};
  Mutex low{"test.perthread.low", 10};
  MutexLock hold(high);
  // Another thread holds nothing, so acquiring the low-rank lock there is
  // fine even while this thread sits on rank 90.
  std::thread other([&] {
    MutexLock lock(low);
    EXPECT_EQ(held_locks_for_testing().size(), 1u);
  });
  other.join();
  EXPECT_TRUE(recorded().empty());
}

TEST(SyncRankTest, SharedAcquisitionsFollowRankOrder) {
  if (!kLockRankChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  RecordingHandlerScope scope;
  SharedMutex high{"test.shared.rank.high", 20};
  Mutex low{"test.shared.rank.low", 10};
  ReaderLock reader(high);
  MutexLock inverted(low);  // rank 10 under rank 20: violation
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded().front().acquiring_name, "test.shared.rank.low");
}

TEST(SyncRankTest, RepoRankTableIsStrictlyOrdered) {
  // The authoritative nesting edges (docs/static-analysis.md): a campaign
  // fold emits progress while serializing note_row, and anything may log
  // while holding its own lock. The constants must keep those paths
  // strictly ascending.
  EXPECT_LT(lock_rank::kCampaignProgress, lock_rank::kProgressReporter);
  EXPECT_LT(lock_rank::kProgressReporter, lock_rank::kLog);
  EXPECT_LT(lock_rank::kPoolCoord, lock_rank::kPoolQueue);
  EXPECT_LT(lock_rank::kTelemetrySlot, lock_rank::kTelemetryRing);
  EXPECT_LT(lock_rank::kTelemetryRing, lock_rank::kTelemetryJsonl);
  EXPECT_LT(lock_rank::kTelemetryJsonl, lock_rank::kMetricsRegistry);
  EXPECT_LT(lock_rank::kMetricsRegistry, lock_rank::kTraceRetired);
  EXPECT_LT(lock_rank::kTraceRetired, lock_rank::kProgressReporter);
  EXPECT_LT(lock_rank::kLog, lock_rank::kDefault);
}

}  // namespace
}  // namespace rsm
