// Cross-validation of the two substrates: the SRAM workload's analytical
// bit-line stage against a transistor-level transient simulation of the
// same physics on the MNA engine. The timing engine's approximations
// (square-law discharge current, linear ramp) must agree with "real"
// simulation within tens of percent and track parameter changes the same
// way — that is what justifies using it as the Spectre stand-in.
#include <cmath>

#include <gtest/gtest.h>

#include "spice/mosfet.hpp"
#include "spice/netlist.hpp"
#include "spice/transient.hpp"
#include "sram/sram.hpp"

namespace rsm {
namespace {

using spice::kGround;
using spice::MosfetParams;
using spice::Netlist;

/// Transient time for an NMOS pull-down to discharge a bit-line cap by
/// delta_v, with the gate stepped to vdd at t=0.
Real simulated_discharge_time(const MosfetParams& cell, Real c_bl, Real vdd,
                              Real delta_v) {
  Netlist n;
  const auto wl = n.node("wl");
  const auto bl = n.node("bl");
  const auto vwl = n.add_vsource(wl, kGround, 0.0);
  // Precharge source via a big resistor so the BL starts at vdd but is
  // effectively floating during the fast discharge.
  const auto vpre = n.node("pre");
  n.add_vsource(vpre, kGround, vdd);
  n.add_resistor(vpre, bl, 1e9);
  n.add_capacitor(bl, kGround, c_bl);
  n.add_mosfet(bl, wl, kGround, kGround, cell);

  spice::TransientOptions opt;
  opt.timestep = 1e-12;
  opt.stop_time = 2e-9;
  opt.update_sources = [&](Real t, Netlist& nl) {
    nl.vsource(vwl).dc = t > 0 ? vdd : 0.0;
  };
  // DC start: WL low, BL precharged through the resistor.
  const spice::TransientResult res = spice::run_transient(n, opt);
  const Real target = vdd - delta_v;
  for (std::size_t s = 0; s < res.time.size(); ++s) {
    if (res.voltage(s, bl) <= target) return res.time[s];
  }
  return -1;  // did not discharge in time
}

TEST(SramVsTransient, BitlineDischargeTimeAgrees) {
  // The timing engine models the BL stage as t = C * dV / Isat(cell).
  const Real vdd = 1.2, c_bl = 120e-15, delta_v = vdd / 2;
  MosfetParams cell;
  cell.vt0 = 0.4;
  cell.kp = 200e-6;
  cell.lambda = 0.1;
  cell.w = 2e-6;
  cell.l = 1e-6;  // W/L = 2, the engine's wol_cell

  const spice::MosfetEval e =
      spice::evaluate_nmos_convention(cell, vdd, vdd);
  const Real analytic = c_bl * delta_v / e.ids;
  const Real simulated = simulated_discharge_time(cell, c_bl, vdd, delta_v);
  ASSERT_GT(simulated, 0);
  // Two opposing approximations largely cancel: the triode tail slows the
  // real discharge while channel-length modulation boosts the early current
  // above plain Isat. Observed agreement is within a few percent; assert a
  // conservative 15% band.
  EXPECT_NEAR(simulated / analytic, 1.0, 0.15);
}

TEST(SramVsTransient, WeakerCellSlowsBothModelsConsistently) {
  const Real vdd = 1.2, c_bl = 120e-15, delta_v = vdd / 2;
  MosfetParams nominal;
  nominal.vt0 = 0.4;
  nominal.kp = 200e-6;
  nominal.lambda = 0.1;
  nominal.w = 2e-6;
  nominal.l = 1e-6;
  MosfetParams weak = nominal;
  weak.vt0 += 0.05;  // +2 sigma of the SRAM config's cell mismatch

  const Real t_nom = simulated_discharge_time(nominal, c_bl, vdd, delta_v);
  const Real t_weak = simulated_discharge_time(weak, c_bl, vdd, delta_v);
  ASSERT_GT(t_nom, 0);
  ASSERT_GT(t_weak, 0);
  const Real sim_ratio = t_weak / t_nom;

  // Analytical sensitivity from the saturation-current model.
  const Real i_nom = spice::evaluate_nmos_convention(nominal, vdd, vdd).ids;
  const Real i_weak = spice::evaluate_nmos_convention(weak, vdd, vdd).ids;
  const Real analytic_ratio = i_nom / i_weak;

  EXPECT_GT(sim_ratio, 1.02);  // the slowdown is visible
  EXPECT_NEAR(sim_ratio, analytic_ratio, 0.1 * analytic_ratio);
}

TEST(SramVsTransient, WorkloadDelayIsSameOrderAsTransientStage) {
  // The full workload's nominal read delay should be within an order of
  // magnitude of a transient-simulated bit-line stage (the other stages
  // add, but none dominates by 10x in a balanced design).
  sram::SramConfig cfg;
  cfg.rows = 32;
  cfg.cols = 16;
  const sram::SramWorkload workload(cfg);

  MosfetParams cell;
  cell.vt0 = cfg.process.vt0_nmos;
  cell.kp = cfg.process.kp_nmos;
  cell.lambda = cfg.process.lambda_nmos;
  cell.w = 2e-6;
  cell.l = 1e-6;
  const Real t_bl = simulated_discharge_time(cell, cfg.c_bitline,
                                             cfg.process.vdd,
                                             cfg.process.vdd / 2);
  ASSERT_GT(t_bl, 0);
  EXPECT_GT(workload.nominal(), t_bl / 10);
  EXPECT_LT(workload.nominal(), t_bl * 10);
}

}  // namespace
}  // namespace rsm
