// Section II end-to-end: correlated physical variations dX -> PCA ->
// independent factors dY -> Hermite response-surface model -> predictions
// back in physical space. Exercises the full statistical front-end together
// with the sparse solver back-end.
#include <cmath>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "linalg/cholesky.hpp"
#include "stats/covariance.hpp"
#include "stats/pca.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

/// A "circuit" whose performance depends on the *physical* correlated
/// variations: f(dX) = 2 dX_0 - dX_3 + 0.5 dX_0 dX_3 + nominal.
Real physical_performance(std::span<const Real> dx) {
  return 10.0 + 2.0 * dx[0] - dx[3] + 0.5 * dx[0] * dx[3];
}

class PcaFlowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Spatially correlated device grid (5x4 = 20 physical parameters).
    std::vector<DiePosition> pos;
    for (int i = 0; i < 5; ++i)
      for (int j = 0; j < 4; ++j)
        pos.push_back({static_cast<Real>(i), static_cast<Real>(j)});
    cov_ = spatial_covariance(pos, 0.3, 1.0, 2.5);
    pca_ = std::make_unique<Pca>(cov_);
    chol_ = std::make_unique<CholeskyFactorization>(cov_);
  }

  Matrix cov_;
  std::unique_ptr<Pca> pca_;
  std::unique_ptr<CholeskyFactorization> chol_;
};

TEST_F(PcaFlowTest, FactorsAreDecorrelated) {
  Rng rng(21);
  const Index n_samples = 20000;
  Matrix factors(n_samples, pca_->num_factors());
  for (Index k = 0; k < n_samples; ++k) {
    const std::vector<Real> dx = sample_correlated(chol_->l(), rng);
    const std::vector<Real> dy = pca_->to_factors(dx);
    for (Index j = 0; j < pca_->num_factors(); ++j)
      factors(k, j) = dy[static_cast<std::size_t>(j)];
  }
  const Matrix est = sample_covariance(factors);
  EXPECT_LT(max_abs_diff(est, Matrix::identity(pca_->num_factors())), 0.06);
}

TEST_F(PcaFlowTest, ModelInFactorSpacePredictsPhysicalPerformance) {
  Rng rng(22);
  const Index n_factors = pca_->num_factors();
  // Note: the physical cross term dX0*dX3 fans out over ~n^2/2 dY pairs
  // with eigenvalue-decaying coefficients — approximately (not exactly)
  // sparse — so this needs more samples per retained term than the exact
  // synthetic cases.
  const Index k_train = 220, k_test = 2000;

  // Training: draw dY ~ N(0, I) directly (what the paper does), map to dX
  // for the "simulator".
  Matrix train(k_train, n_factors);
  std::vector<Real> f_train(static_cast<std::size_t>(k_train));
  for (Index k = 0; k < k_train; ++k) {
    rng.fill_normal(train.row(k));
    const std::vector<Real> dx = pca_->to_physical(train.row(k));
    f_train[static_cast<std::size_t>(k)] = physical_performance(dx);
  }

  auto dict = std::make_shared<BasisDictionary>(
      BasisDictionary::quadratic(n_factors));
  // Underdetermined: M = 251 > K = 220.
  ASSERT_GT(dict->size(), k_train);
  BuildOptions opt;
  opt.max_lambda = 70;
  const BuildReport report = build_model(dict, train, f_train, opt);

  // Test on fresh *physical* draws, mapped into factor space for the model.
  Real ss_err = 0, ss_tot = 0, mean_f = 0;
  std::vector<Real> truths, preds;
  for (Index k = 0; k < k_test; ++k) {
    const std::vector<Real> dx = sample_correlated(chol_->l(), rng);
    const Real truth = physical_performance(dx);
    const Real pred = report.model.predict(pca_->to_factors(dx));
    truths.push_back(truth);
    preds.push_back(pred);
    mean_f += truth;
  }
  mean_f /= static_cast<Real>(k_test);
  for (Index k = 0; k < k_test; ++k) {
    ss_err += (preds[static_cast<std::size_t>(k)] -
               truths[static_cast<std::size_t>(k)]) *
              (preds[static_cast<std::size_t>(k)] -
               truths[static_cast<std::size_t>(k)]);
    ss_tot += (truths[static_cast<std::size_t>(k)] - mean_f) *
              (truths[static_cast<std::size_t>(k)] - mean_f);
  }
  // The quadratic-in-dX function is exactly quadratic in dY (linear map);
  // with the approximately-sparse coefficient tail, the model should still
  // capture ~99% of the variance.
  EXPECT_LT(std::sqrt(ss_err / ss_tot), 0.12);
}

TEST_F(PcaFlowTest, ModelMeanMatchesNominal) {
  Rng rng(23);
  const Index n_factors = pca_->num_factors();
  Matrix train(200, n_factors);
  std::vector<Real> f_train(200);
  for (Index k = 0; k < 200; ++k) {
    rng.fill_normal(train.row(k));
    f_train[static_cast<std::size_t>(k)] =
        physical_performance(pca_->to_physical(train.row(k)));
  }
  auto dict = std::make_shared<BasisDictionary>(
      BasisDictionary::quadratic(n_factors));
  BuildOptions opt;
  opt.max_lambda = 30;
  const BuildReport report = build_model(dict, train, f_train, opt);
  // E[f] = 10 + 0.5 E[dX0 dX3] = 10 + 0.5 Cov(0, 3).
  const Real expected_mean = 10.0 + 0.5 * cov_(0, 3);
  EXPECT_NEAR(report.model.analytic_mean(), expected_mean, 0.15);
}

}  // namespace
}  // namespace rsm
