#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/synthetic.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

TEST(Pipeline, OmpEndToEndRecoversModel) {
  Rng rng(801);
  const Index n = 12;  // quadratic dict size 91
  auto dict =
      std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  SyntheticOptions sopt;
  sopt.num_active = 6;
  sopt.noise_stddev = 0.01;
  const SyntheticSparseFunction fn(dict, sopt, rng);
  const Matrix train = monte_carlo_normal(80, n, rng);
  const Matrix test = monte_carlo_normal(500, n, rng);
  const std::vector<Real> f_train = fn.observe(train, rng);
  const std::vector<Real> f_test = fn.observe(test, rng);

  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 20;
  const BuildReport report = build_model(dict, train, f_train, opt);

  EXPECT_GE(report.lambda, 4);
  EXPECT_LE(report.lambda, 12);
  EXPECT_LT(validate_model(report.model, test, f_test), 0.1);
  EXPECT_GT(report.fit_seconds, 0.0);
}

TEST(Pipeline, AllSparseMethodsProduceUsableModels) {
  Rng rng(802);
  const Index n = 10;
  auto dict =
      std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  SyntheticOptions sopt;
  sopt.num_active = 5;
  sopt.noise_stddev = 0.02;
  const SyntheticSparseFunction fn(dict, sopt, rng);
  const Matrix train = monte_carlo_normal(70, n, rng);
  const Matrix test = monte_carlo_normal(400, n, rng);
  const std::vector<Real> f_train = fn.observe(train, rng);
  const std::vector<Real> f_test = fn.observe(test, rng);

  for (Method method : {Method::kStar, Method::kLar, Method::kOmp}) {
    BuildOptions opt;
    opt.method = method;
    opt.max_lambda = 25;
    const BuildReport report = build_model(dict, train, f_train, opt);
    EXPECT_LT(validate_model(report.model, test, f_test), 0.6)
        << method_name(method);
  }
}

TEST(Pipeline, LeastSquaresRequiresEnoughSamples) {
  Rng rng(803);
  const Index n = 8;
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  // dict size = 45; give only 30 samples.
  const Matrix train = monte_carlo_normal(30, n, rng);
  const std::vector<Real> f(30, 1.0);
  BuildOptions opt;
  opt.method = Method::kLeastSquares;
  EXPECT_THROW(build_model(dict, train, f, opt), Error);
}

TEST(Pipeline, LeastSquaresBeatsNothingAtFullSampling) {
  Rng rng(804);
  const Index n = 6;
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  SyntheticOptions sopt;
  sopt.num_active = 5;
  sopt.noise_stddev = 0.01;
  const SyntheticSparseFunction fn(dict, sopt, rng);
  const Index m = dict->size();  // 28
  const Matrix train = monte_carlo_normal(3 * m, n, rng);
  const Matrix test = monte_carlo_normal(300, n, rng);
  const std::vector<Real> f_train = fn.observe(train, rng);
  const std::vector<Real> f_test = fn.observe(test, rng);
  BuildOptions opt;
  opt.method = Method::kLeastSquares;
  const BuildReport report = build_model(dict, train, f_train, opt);
  EXPECT_LT(validate_model(report.model, test, f_test), 0.1);
}

TEST(Pipeline, SkipCvUsesExactLambda) {
  Rng rng(805);
  const Index n = 8;
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  const Matrix train = monte_carlo_normal(60, n, rng);
  const std::vector<Real> f = rng.normal_vector(60);
  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 7;
  opt.skip_cross_validation = true;
  const BuildReport report = build_model(dict, train, f, opt);
  EXPECT_EQ(report.lambda, 7);
  EXPECT_TRUE(report.cv.error_curve.empty());
}

TEST(Pipeline, SharedDesignMatrixPathMatches) {
  Rng rng(806);
  const Index n = 7;
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  const Matrix train = monte_carlo_normal(50, n, rng);
  const std::vector<Real> f = rng.normal_vector(50);
  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 10;
  opt.skip_cross_validation = true;
  const BuildReport a = build_model(dict, train, f, opt);
  const Matrix design = dict->design_matrix(train);
  const BuildReport b = build_model_from_design(dict, design, f, opt);
  ASSERT_EQ(a.model.num_terms(), b.model.num_terms());
  for (Index i = 0; i < a.model.num_terms(); ++i) {
    EXPECT_EQ(a.model.terms()[static_cast<std::size_t>(i)].basis_index,
              b.model.terms()[static_cast<std::size_t>(i)].basis_index);
    EXPECT_DOUBLE_EQ(a.model.terms()[static_cast<std::size_t>(i)].coefficient,
                     b.model.terms()[static_cast<std::size_t>(i)].coefficient);
  }
}

TEST(Pipeline, MethodNames) {
  EXPECT_STREQ(method_name(Method::kLeastSquares), "LS");
  EXPECT_STREQ(method_name(Method::kStar), "STAR");
  EXPECT_STREQ(method_name(Method::kLar), "LAR");
  EXPECT_STREQ(method_name(Method::kOmp), "OMP");
}

TEST(Pipeline, MakePathSolverRejectsLs) {
  EXPECT_THROW(make_path_solver(Method::kLeastSquares), Error);
}

TEST(Pipeline, TrainingErrorReported) {
  Rng rng(807);
  const Index n = 6;
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  SyntheticOptions sopt;
  sopt.num_active = 4;
  const SyntheticSparseFunction fn(dict, sopt, rng);
  const Matrix train = monte_carlo_normal(60, n, rng);
  const std::vector<Real> f = fn.observe(train, rng);
  BuildOptions opt;
  opt.max_lambda = 15;
  const BuildReport report = build_model(dict, train, f, opt);
  EXPECT_LT(report.training_error, 0.05);  // noiseless: near-exact fit
}

}  // namespace
}  // namespace rsm
