// Property-style sweeps of the paper's central claim: a P-sparse coefficient
// vector over an M-term dictionary is recoverable from K = O(P log M)
// samples — far fewer than the K >= M that least squares needs.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/omp.hpp"
#include "core/pipeline.hpp"
#include "core/synthetic.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

struct RecoveryCase {
  Index num_variables;   // N (dictionary is quadratic: M = 1+2N+N(N-1)/2)
  Index num_active;      // P
  Index num_samples;     // K
  Real noise;
};

class UnderdeterminedRecovery
    : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(UnderdeterminedRecovery, OmpFindsTruthWithFarFewerSamplesThanM) {
  const RecoveryCase c = GetParam();
  Rng rng(static_cast<std::uint64_t>(
      c.num_variables * 1000 + c.num_active * 10 + c.num_samples));
  auto dict = std::make_shared<BasisDictionary>(
      BasisDictionary::quadratic(c.num_variables));
  ASSERT_LT(c.num_samples, dict->size())
      << "case must be underdetermined to be interesting";

  SyntheticOptions sopt;
  sopt.num_active = c.num_active;
  sopt.noise_stddev = c.noise;
  sopt.decay = 0.9;
  const SyntheticSparseFunction fn(dict, sopt, rng);

  const Matrix train = monte_carlo_normal(c.num_samples, c.num_variables, rng);
  const Matrix test = monte_carlo_normal(1000, c.num_variables, rng);
  const std::vector<Real> f_train = fn.observe(train, rng);
  std::vector<Real> f_test(static_cast<std::size_t>(test.rows()));
  for (Index k = 0; k < test.rows(); ++k)
    f_test[static_cast<std::size_t>(k)] = fn.evaluate(test.row(k));

  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = std::min<Index>(2 * c.num_active + 10, c.num_samples / 3);
  const BuildReport report = build_model(dict, train, f_train, opt);

  const Real err = validate_model(report.model, test, f_test);
  // Against a testing set the model must explain the bulk of the
  // variability despite K << M.
  EXPECT_LT(err, c.noise > 0 ? 0.35 : 0.05)
      << "N=" << c.num_variables << " M=" << dict->size()
      << " P=" << c.num_active << " K=" << c.num_samples;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, UnderdeterminedRecovery,
    ::testing::Values(
        RecoveryCase{20, 8, 100, 0.0},    // M = 231,  K = 100
        RecoveryCase{20, 8, 100, 0.05},
        RecoveryCase{40, 10, 150, 0.0},   // M = 861,  K = 150
        RecoveryCase{40, 10, 150, 0.05},
        RecoveryCase{60, 12, 220, 0.05},  // M = 1891, K = 220
        RecoveryCase{80, 12, 260, 0.05}   // M = 3321, K = 260
        ));

TEST(Recovery, SampleComplexityScalesLogarithmically) {
  // Fix P; grow M by ~16x; the K needed for support recovery must grow far
  // slower than M (the O(P log M) law). We verify K(M2)/K(M1) stays far
  // below M2/M1 by measuring the minimal K at which OMP recovers.
  const Index p = 5;
  const auto minimal_k = [&](Index n) -> Index {
    auto dict =
        std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
    for (Index k = 20; k <= 400; k += 10) {
      int successes = 0;
      for (int trial = 0; trial < 3; ++trial) {
        Rng rng(static_cast<std::uint64_t>(n * 100 + k + trial));
        SyntheticOptions sopt;
        sopt.num_active = p;
        sopt.decay = 1.0;
        const SyntheticSparseFunction fn(dict, sopt, rng);
        const Matrix train = monte_carlo_normal(k, n, rng);
        const std::vector<Real> f = fn.observe(train, rng);
        const Matrix g = dict->design_matrix(train);
        const SolverPath path = OmpSolver().fit_path(g, f, p);
        std::set<Index> found(path.selection_order.begin(),
                              path.selection_order.end());
        bool all = true;
        for (Index idx : fn.active_indices())
          if (!found.count(idx)) all = false;
        if (all) ++successes;
      }
      if (successes == 3) return k;
    }
    return 400;
  };

  const Index k_small = minimal_k(10);   // M = 66
  const Index k_large = minimal_k(40);   // M = 861 (13x more columns)
  EXPECT_LT(k_large, 4 * k_small + 40);  // grows like log M, not like M
}

}  // namespace
}  // namespace rsm
