// Parameterized property sweeps across module boundaries: invariants that
// must hold for families of random instances, not just hand-picked cases.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "basis/hermite.hpp"
#include "basis/quadrature.hpp"
#include "core/cosamp.hpp"
#include "core/lar.hpp"
#include "core/lasso_cd.hpp"
#include "core/omp.hpp"
#include "linalg/vector_ops.hpp"
#include "spice/netlist.hpp"
#include "spice/transient.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

// ---------------------------------------------------------------- solvers

class SolverAgreementSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverAgreementSweep, GreedyFamilyAgreesOnWellSeparatedTruth) {
  // With well-separated coefficients on a random Gaussian design, OMP,
  // CoSaMP and the LAR support all land on the planted truth.
  Rng rng(GetParam());
  const Index k = 90, m = 250, p = 5;
  const Matrix g = monte_carlo_normal(k, m, rng);
  std::set<Index> support;
  while (static_cast<Index>(support.size()) < p)
    support.insert(rng.uniform_index(m));
  std::vector<Real> f(static_cast<std::size_t>(k), 0.0);
  for (Index s : support) {
    const Real c = (rng.uniform() < 0.5 ? -1.0 : 1.0) * (1.0 + rng.uniform());
    axpy(c, g.col(s), f);
  }

  const SolverPath omp = OmpSolver().fit_path(g, f, p);
  const std::set<Index> omp_sup(omp.selection_order.begin(),
                                omp.selection_order.end());
  EXPECT_EQ(omp_sup, support) << "OMP";

  const SolverPath cosamp = CosampSolver().fit_at_sparsity(g, f, p);
  const std::vector<Index> cs = cosamp.support(0);
  EXPECT_EQ(std::set<Index>(cs.begin(), cs.end()), support) << "CoSaMP";

  const SolverPath lar = LarSolver().fit_path(g, f, p);
  const std::vector<Index> ls = lar.support(lar.num_steps() - 1);
  EXPECT_EQ(std::set<Index>(ls.begin(), ls.end()), support) << "LAR";
}

TEST_P(SolverAgreementSweep, LarAndCdAgreeAtMatchedL1Norm) {
  Rng rng(GetParam() + 1000);
  const Index k = 60, m = 20;
  const Matrix g = monte_carlo_normal(k, m, rng);
  const std::vector<Real> f = rng.normal_vector(k);

  LarSolver::Options lar_opt;
  lar_opt.lasso = true;
  const SolverPath lar = LarSolver(lar_opt).fit_path(g, f, 6);
  ASSERT_GE(lar.num_steps(), 4);
  const std::vector<Real> lar_dense = lar.dense_coefficients(3, m);
  Real l1 = 0;
  for (Real b : lar_dense) l1 += std::abs(b);

  const LassoCdSolver cd;
  Real best_gap = 1e300;
  std::vector<Real> best;
  for (Real mu = 2.0; mu > 1e-4; mu *= 0.96) {
    const std::vector<Real> beta = cd.fit_at(g, f, mu);
    Real norm = 0;
    for (Real b : beta) norm += std::abs(b);
    if (std::abs(norm - l1) < best_gap) {
      best_gap = std::abs(norm - l1);
      best = beta;
    }
  }
  ASSERT_FALSE(best.empty());
  Real max_diff = 0;
  for (Index j = 0; j < m; ++j)
    max_diff = std::max(max_diff,
                        std::abs(best[static_cast<std::size_t>(j)] -
                                 lar_dense[static_cast<std::size_t>(j)]));
  EXPECT_LT(max_diff, 0.08) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreementSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ------------------------------------------------------------- quadrature

class QuadratureExactness : public ::testing::TestWithParam<int> {};

TEST_P(QuadratureExactness, IntegratesHighestExactMonomial) {
  // An n-point rule integrates x^(2n-2) exactly: E[x^{2m}] = (2m-1)!!.
  const int n = GetParam();
  const int power = 2 * n - 2;
  Real expected = 1;
  for (int i = power - 1; i >= 1; i -= 2) expected *= i;
  const Real got = normal_expectation(
      [power](Real x) { return std::pow(x, power); }, n);
  EXPECT_NEAR(got / std::max(expected, Real{1}), expected / std::max(expected, Real{1}),
              1e-8)
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Orders, QuadratureExactness,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16, 24));

// -------------------------------------------------------------- transient

struct RcCase {
  Real resistance;
  Real capacitance;
};

class TransientRcSweep : public ::testing::TestWithParam<RcCase> {};

TEST_P(TransientRcSweep, StepResponseMatchesAnalyticAcrossDecades) {
  const RcCase c = GetParam();
  const Real tau = c.resistance * c.capacitance;
  spice::Netlist n;
  const auto in = n.node("in");
  const auto out = n.node("out");
  const auto vin = n.add_vsource(in, spice::kGround, 0.0);
  n.add_resistor(in, out, c.resistance);
  n.add_capacitor(out, spice::kGround, c.capacitance);

  spice::TransientOptions opt;
  opt.timestep = tau / 100;
  opt.stop_time = 4 * tau;
  opt.start_from_dc = false;
  opt.update_sources = [&](Real, spice::Netlist& nl) {
    nl.vsource(vin).dc = 1.0;
  };
  const spice::TransientResult res = spice::run_transient(n, opt);
  for (std::size_t s = 10; s < res.time.size(); s += 37) {
    const Real expected = 1.0 - std::exp(-res.time[s] / tau);
    EXPECT_NEAR(res.voltage(s, out), expected, 0.01)
        << "R=" << c.resistance << " C=" << c.capacitance;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Decades, TransientRcSweep,
    ::testing::Values(RcCase{1e2, 1e-15}, RcCase{1e3, 1e-12},
                      RcCase{1e4, 1e-9}, RcCase{1e6, 1e-12},
                      RcCase{50.0, 5e-13}));

// ---------------------------------------------------- hermite consistency

class HermiteConsistency : public ::testing::TestWithParam<int> {};

TEST_P(HermiteConsistency, SquareIntegratesToOne) {
  // E[g_n(X)^2] == 1 exactly, via a rule of matching exactness.
  const int order = GetParam();
  const Real got = normal_expectation(
      [order](Real x) {
        const Real v = hermite_normalized(order, x);
        return v * v;
      },
      order + 1);
  EXPECT_NEAR(got, 1.0, 1e-9) << "order " << order;
}

INSTANTIATE_TEST_SUITE_P(Orders, HermiteConsistency,
                         ::testing::Values(0, 1, 2, 3, 4, 6, 9, 12, 16, 20));

}  // namespace
}  // namespace rsm
