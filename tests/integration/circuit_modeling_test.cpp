// End-to-end: circuit workloads -> Monte Carlo sampling -> sparse fitting ->
// validation on an independent testing set. Small-scale versions of the
// paper's Section V experiments, sized to run in seconds.
#include <cmath>

#include <gtest/gtest.h>

#include "circuits/opamp.hpp"
#include "core/pipeline.hpp"
#include "sram/sram.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

TEST(CircuitModeling, OpAmpOffsetLinearModel) {
  // Offset is dominated by the input-pair mismatch: a linear sparse model
  // from K << M samples must validate well and select the pair's variables.
  circuits::OpAmpConfig cfg;
  cfg.num_variables = 120;
  const circuits::OpAmpWorkload workload(cfg);
  const Index n = workload.num_variables();
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));

  Rng rng(901);
  const Index k_train = 60, k_test = 120;  // K=60 << M=121
  const Matrix train = monte_carlo_normal(k_train, n, rng);
  const Matrix test = monte_carlo_normal(k_test, n, rng);
  std::vector<Real> f_train(static_cast<std::size_t>(k_train));
  std::vector<Real> f_test(static_cast<std::size_t>(k_test));
  for (Index k = 0; k < k_train; ++k)
    f_train[static_cast<std::size_t>(k)] =
        workload.evaluate(train.row(k)).offset_v;
  for (Index k = 0; k < k_test; ++k)
    f_test[static_cast<std::size_t>(k)] =
        workload.evaluate(test.row(k)).offset_v;

  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 15;
  const BuildReport report = build_model(dict, train, f_train, opt);

  EXPECT_LT(validate_model(report.model, test, f_test), 0.35);
  // The input pair's local dVth variables are dictionary columns 7 and 11
  // (basis index = variable + 1 for the linear dictionary).
  bool has_m1 = false, has_m2 = false;
  for (const ModelTerm& t : report.model.terms()) {
    if (t.basis_index == 7) has_m1 = true;
    if (t.basis_index == 11) has_m2 = true;
  }
  EXPECT_TRUE(has_m1);
  EXPECT_TRUE(has_m2);
}

TEST(CircuitModeling, SramDelaySparseModelBeatsSampleCount) {
  sram::SramConfig cfg;
  cfg.rows = 24;
  cfg.cols = 20;  // N = 542 variables, M = 543 linear bases
  const sram::SramWorkload workload(cfg);
  const Index n = workload.num_variables();
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));

  Rng rng(902);
  const Index k_train = 150, k_test = 200;
  const Matrix train = monte_carlo_normal(k_train, n, rng);
  const Matrix test = monte_carlo_normal(k_test, n, rng);
  std::vector<Real> f_train(static_cast<std::size_t>(k_train));
  std::vector<Real> f_test(static_cast<std::size_t>(k_test));
  for (Index k = 0; k < k_train; ++k)
    f_train[static_cast<std::size_t>(k)] = workload.evaluate(train.row(k));
  for (Index k = 0; k < k_test; ++k)
    f_test[static_cast<std::size_t>(k)] = workload.evaluate(test.row(k));

  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 45;
  const BuildReport report = build_model(dict, train, f_train, opt);

  // K = 150 << M = 543, yet the sparse model explains most delay variation.
  EXPECT_LT(validate_model(report.model, test, f_test), 0.35);
  // And it is genuinely sparse.
  EXPECT_LT(report.lambda, 50);
}

TEST(CircuitModeling, SramModelSelectsPathVariables) {
  sram::SramConfig cfg;
  cfg.rows = 16;
  cfg.cols = 12;
  const sram::SramWorkload workload(cfg);
  const sram::SramVariableMap& vm = workload.variable_map();
  const Index n = workload.num_variables();
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));

  Rng rng(903);
  const Index k_train = 160;
  const Matrix train = monte_carlo_normal(k_train, n, rng);
  std::vector<Real> f_train(static_cast<std::size_t>(k_train));
  for (Index k = 0; k < k_train; ++k)
    f_train[static_cast<std::size_t>(k)] = workload.evaluate(train.row(k));

  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 30;
  opt.skip_cross_validation = true;
  const BuildReport report = build_model(dict, train, f_train, opt);

  // The accessed cell must be among the selected variables.
  const Index accessed_col = vm.cell(0, 0) + 1;  // +1: constant basis first
  bool found_accessed = false;
  for (const ModelTerm& t : report.model.terms())
    if (t.basis_index == accessed_col) found_accessed = true;
  EXPECT_TRUE(found_accessed);
}

TEST(CircuitModeling, QuadraticBeatsLinearForBandwidth) {
  // Bandwidth has visible curvature in the dominant variables; with ample
  // training data a quadratic model on the top variables should not lose to
  // the linear one.
  circuits::OpAmpConfig cfg;
  cfg.num_variables = 40;
  const circuits::OpAmpWorkload workload(cfg);
  const Index n = workload.num_variables();

  Rng rng(904);
  const Index k_train = 250, k_test = 150;
  const Matrix train = monte_carlo_normal(k_train, n, rng);
  const Matrix test = monte_carlo_normal(k_test, n, rng);
  std::vector<Real> f_train(static_cast<std::size_t>(k_train));
  std::vector<Real> f_test(static_cast<std::size_t>(k_test));
  for (Index k = 0; k < k_train; ++k)
    f_train[static_cast<std::size_t>(k)] =
        workload.evaluate(train.row(k)).bandwidth_hz;
  for (Index k = 0; k < k_test; ++k)
    f_test[static_cast<std::size_t>(k)] =
        workload.evaluate(test.row(k)).bandwidth_hz;

  auto lin = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  auto quad = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 40;
  const Real err_lin =
      validate_model(build_model(lin, train, f_train, opt).model, test, f_test);
  const Real err_quad = validate_model(
      build_model(quad, train, f_train, opt).model, test, f_test);
  EXPECT_LT(err_quad, err_lin * 1.1);  // quadratic at least matches linear
  EXPECT_LT(err_quad, 0.3);
}

}  // namespace
}  // namespace rsm
