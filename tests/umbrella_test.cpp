// Compile-and-smoke test of the umbrella header: one include drives a
// miniature end-to-end flow touching every layer.
#include "rsm.hpp"

#include <gtest/gtest.h>

namespace rsm {
namespace {

TEST(Umbrella, EndToEndMiniFlow) {
  Rng rng(1);
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(6));
  SyntheticOptions sopt;
  sopt.num_active = 4;
  const SyntheticSparseFunction fn(dict, sopt, rng);
  const Matrix train = monte_carlo_normal(60, 6, rng);
  const std::vector<Real> f = fn.observe(train, rng);

  BuildOptions opt;
  opt.max_lambda = 10;
  const BuildReport report = build_model(dict, train, f, opt);
  EXPECT_GT(report.lambda, 0);

  const SobolIndices sensitivity = sobol_indices(report.model);
  EXPECT_EQ(sensitivity.first_order.size(), 6u);

  Specification spec;
  spec.upper = report.model.analytic_mean();
  Rng yrng(2);
  const YieldResult y = estimate_yield(report.model, spec, 2000, yrng);
  EXPECT_GT(y.yield, 0.0);
  EXPECT_LT(y.yield, 1.0);

  // And a one-liner on the simulator side.
  spice::Netlist n = spice::parse_netlist("V1 a 0 2\nR1 a b 1k\nR2 b 0 1k\n");
  EXPECT_NEAR(spice::solve_dc(n).voltage(n.node("b")), 1.0, 1e-6);
}

}  // namespace
}  // namespace rsm
