#include "linalg/vector_ops.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace rsm {
namespace {

TEST(VectorOps, Dot) {
  const std::vector<Real> x{1, 2, 3, 4, 5};
  const std::vector<Real> y{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dot(x, y), 35.0);
}

TEST(VectorOps, DotHandlesRemainderLanes) {
  // Lengths 1..9 exercise the unrolled kernel's tail handling.
  for (std::size_t n = 1; n <= 9; ++n) {
    std::vector<Real> x(n), y(n);
    Real expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<Real>(i + 1);
      y[i] = static_cast<Real>(2 * i + 1);
      expected += x[i] * y[i];
    }
    EXPECT_DOUBLE_EQ(dot(x, y), expected) << "n=" << n;
  }
}

TEST(VectorOps, Nrm2) {
  const std::vector<Real> x{3, 4};
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
  EXPECT_DOUBLE_EQ(nrm2(std::vector<Real>{}), 0.0);
}

TEST(VectorOps, Sum) {
  EXPECT_DOUBLE_EQ(vsum(std::vector<Real>{1, 2, 3}), 6.0);
}

TEST(VectorOps, Axpy) {
  const std::vector<Real> x{1, 2, 3};
  std::vector<Real> y{10, 20, 30};
  axpy(2.0, x, y);
  EXPECT_EQ(y[0], 12);
  EXPECT_EQ(y[1], 24);
  EXPECT_EQ(y[2], 36);
}

TEST(VectorOps, Scale) {
  std::vector<Real> x{1, -2, 3};
  scale(-2.0, x);
  EXPECT_EQ(x[0], -2);
  EXPECT_EQ(x[1], 4);
  EXPECT_EQ(x[2], -6);
}

TEST(VectorOps, MaxAbs) {
  EXPECT_DOUBLE_EQ(max_abs(std::vector<Real>{1, -7, 3}), 7.0);
  EXPECT_DOUBLE_EQ(max_abs(std::vector<Real>{}), 0.0);
}

TEST(VectorOps, ArgmaxAbs) {
  EXPECT_EQ(argmax_abs(std::vector<Real>{1, -7, 3}), 1);
  EXPECT_EQ(argmax_abs(std::vector<Real>{}), -1);
  // Ties resolve to the first occurrence.
  EXPECT_EQ(argmax_abs(std::vector<Real>{5, -5}), 0);
}

TEST(VectorOps, SubAdd) {
  const std::vector<Real> a{5, 6}, b{1, 2};
  const std::vector<Real> d = vsub(a, b);
  EXPECT_EQ(d[0], 4);
  EXPECT_EQ(d[1], 4);
  const std::vector<Real> s = vadd(a, b);
  EXPECT_EQ(s[0], 6);
  EXPECT_EQ(s[1], 8);
}

}  // namespace
}  // namespace rsm
