#include "linalg/blas.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace rsm {
namespace {

Matrix random_matrix(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  for (Index r = 0; r < rows; ++r) rng.fill_normal(m.row(r));
  return m;
}

/// Reference O(n^3) product without blocking.
Matrix naive_product(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i)
    for (Index j = 0; j < b.cols(); ++j) {
      Real s = 0;
      for (Index k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  return c;
}

TEST(Blas, GemvMatchesManual) {
  Rng rng(1);
  const Matrix a = random_matrix(6, 4, rng);
  const std::vector<Real> x = rng.normal_vector(4);
  std::vector<Real> y(6);
  gemv(a, x, y);
  for (Index r = 0; r < 6; ++r) {
    Real expected = 0;
    for (Index c = 0; c < 4; ++c)
      expected += a(r, c) * x[static_cast<std::size_t>(c)];
    EXPECT_NEAR(y[static_cast<std::size_t>(r)], expected, 1e-12);
  }
}

TEST(Blas, GemvTransposedMatchesExplicitTranspose) {
  Rng rng(2);
  const Matrix a = random_matrix(7, 5, rng);
  const std::vector<Real> x = rng.normal_vector(7);
  std::vector<Real> y1(5), y2(5);
  gemv_transposed(a, x, y1);
  gemv(a.transposed(), x, y2);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

// Parameterized sweep over shapes, including block-boundary sizes.
class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 100 + n));
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  const Matrix c = a * b;
  EXPECT_LT(max_abs_diff(c, naive_product(a, b)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 2},
                      std::tuple{16, 16, 16}, std::tuple{63, 64, 65},
                      std::tuple{64, 65, 63}, std::tuple{65, 63, 64},
                      std::tuple{128, 40, 70}, std::tuple{1, 100, 1}));

TEST(Blas, GramMatchesTransposeProduct) {
  Rng rng(4);
  const Matrix a = random_matrix(30, 12, rng);
  const Matrix g = gram(a);
  EXPECT_LT(max_abs_diff(g, a.transposed() * a), 1e-10);
}

TEST(Blas, GramIsSymmetric) {
  Rng rng(5);
  const Matrix a = random_matrix(20, 9, rng);
  const Matrix g = gram(a);
  EXPECT_LT(max_abs_diff(g, g.transposed()), 1e-14);
}

TEST(Blas, GemmShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(4, 2);
  EXPECT_THROW(a * b, Error);
}

}  // namespace
}  // namespace rsm
