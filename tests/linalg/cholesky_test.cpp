#include "linalg/cholesky.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

/// Random SPD matrix A = B'B + n*I.
Matrix random_spd(Index n, Rng& rng) {
  Matrix b(n, n);
  for (Index r = 0; r < n; ++r) rng.fill_normal(b.row(r));
  Matrix a = gram(b);
  for (Index i = 0; i < n; ++i) a(i, i) += static_cast<Real>(n);
  return a;
}

TEST(Cholesky, FactorReconstructs) {
  Rng rng(31);
  const Matrix a = random_spd(8, rng);
  const CholeskyFactorization chol(a);
  const Matrix l = chol.l();
  EXPECT_LT(max_abs_diff(l * l.transposed(), a), 1e-10);
}

TEST(Cholesky, FactorIsLowerTriangular) {
  Rng rng(32);
  const Matrix a = random_spd(6, rng);
  const Matrix l = CholeskyFactorization(a).l();
  for (Index i = 0; i < 6; ++i)
    for (Index j = i + 1; j < 6; ++j) EXPECT_EQ(l(i, j), 0.0);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  Rng rng(33);
  const Matrix a = random_spd(10, rng);
  const std::vector<Real> x_true = rng.normal_vector(10);
  const std::vector<Real> b = a * x_true;
  const std::vector<Real> x = CholeskyFactorization(a).solve(b);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, TriangularSolvesCompose) {
  Rng rng(34);
  const Matrix a = random_spd(7, rng);
  const CholeskyFactorization chol(a);
  const std::vector<Real> b = rng.normal_vector(7);
  const std::vector<Real> via_parts = chol.solve_upper(chol.solve_lower(b));
  const std::vector<Real> direct = chol.solve(b);
  for (std::size_t i = 0; i < 7; ++i)
    EXPECT_DOUBLE_EQ(via_parts[i], direct[i]);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(CholeskyFactorization{a}, Error);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(CholeskyFactorization{Matrix(2, 3)}, Error);
}

TEST(Cholesky, LogDeterminant) {
  const Matrix a{{4, 0}, {0, 9}};
  EXPECT_NEAR(CholeskyFactorization(a).log_determinant(), std::log(36.0),
              1e-12);
}

TEST(Cholesky, IdentityFactorsToIdentity) {
  const Matrix l = CholeskyFactorization(Matrix::identity(4)).l();
  EXPECT_LT(max_abs_diff(l, Matrix::identity(4)), 1e-15);
}

TEST(Cholesky, OneShotHelper) {
  const Matrix a{{2, 0}, {0, 4}};
  const std::vector<Real> x = cholesky_solve(a, std::vector<Real>{2, 8});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

}  // namespace
}  // namespace rsm
