#include "linalg/incremental_qr.hpp"

#include <gtest/gtest.h>

#include "linalg/qr.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

TEST(IncrementalQr, MatchesBatchQrSolve) {
  Rng rng(21);
  const Index rows = 40, cols = 8;
  Matrix a(rows, cols);
  for (Index r = 0; r < rows; ++r) rng.fill_normal(a.row(r));
  const std::vector<Real> b = rng.normal_vector(rows);

  IncrementalQr inc(rows, cols);
  for (Index j = 0; j < cols; ++j) ASSERT_TRUE(inc.append_column(a.col(j)));

  const std::vector<Real> x_inc = inc.solve(b);
  const std::vector<Real> x_batch = QrFactorization(a).solve(b);
  ASSERT_EQ(x_inc.size(), x_batch.size());
  for (std::size_t i = 0; i < x_inc.size(); ++i)
    EXPECT_NEAR(x_inc[i], x_batch[i], 1e-9);
}

TEST(IncrementalQr, QColumnsOrthonormal) {
  Rng rng(22);
  const Index rows = 25, cols = 6;
  IncrementalQr inc(rows, cols);
  for (Index j = 0; j < cols; ++j)
    ASSERT_TRUE(inc.append_column(rng.normal_vector(rows)));
  for (Index i = 0; i < cols; ++i) {
    for (Index j = 0; j < cols; ++j) {
      const Real expected = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(dot(inc.q_column(i), inc.q_column(j)), expected, 1e-13);
    }
  }
}

TEST(IncrementalQr, RejectsDependentColumn) {
  Rng rng(23);
  const Index rows = 10;
  IncrementalQr inc(rows, 3);
  const std::vector<Real> c0 = rng.normal_vector(rows);
  const std::vector<Real> c1 = rng.normal_vector(rows);
  ASSERT_TRUE(inc.append_column(c0));
  ASSERT_TRUE(inc.append_column(c1));
  // 2*c0 - 3*c1 is in the span.
  std::vector<Real> dep(c0);
  scale(2.0, dep);
  axpy(-3.0, c1, dep);
  EXPECT_FALSE(inc.append_column(dep));
  EXPECT_EQ(inc.size(), 2);
}

TEST(IncrementalQr, ResidualOrthogonalToAllColumns) {
  Rng rng(24);
  const Index rows = 30, cols = 5;
  Matrix a(rows, cols);
  for (Index r = 0; r < rows; ++r) rng.fill_normal(a.row(r));
  IncrementalQr inc(rows, cols);
  for (Index j = 0; j < cols; ++j) ASSERT_TRUE(inc.append_column(a.col(j)));
  const std::vector<Real> b = rng.normal_vector(rows);
  const std::vector<Real> res = inc.residual(b);
  for (Index j = 0; j < cols; ++j)
    EXPECT_NEAR(dot(a.col(j), res), 0.0, 1e-10);
}

TEST(IncrementalQr, ResidualMatchesDirectComputation) {
  Rng rng(25);
  const Index rows = 20, cols = 4;
  Matrix a(rows, cols);
  for (Index r = 0; r < rows; ++r) rng.fill_normal(a.row(r));
  IncrementalQr inc(rows, cols);
  for (Index j = 0; j < cols; ++j) ASSERT_TRUE(inc.append_column(a.col(j)));
  const std::vector<Real> b = rng.normal_vector(rows);
  const std::vector<Real> x = inc.solve(b);
  const std::vector<Real> res_direct = vsub(b, a * x);
  const std::vector<Real> res_inc = inc.residual(b);
  for (std::size_t i = 0; i < res_inc.size(); ++i)
    EXPECT_NEAR(res_inc[i], res_direct[i], 1e-10);
}

TEST(IncrementalQr, SolveAfterEachAppendMatchesGrowingBatch) {
  // The OMP usage pattern: solve after every append.
  Rng rng(26);
  const Index rows = 35, max_cols = 7;
  Matrix a(rows, max_cols);
  for (Index r = 0; r < rows; ++r) rng.fill_normal(a.row(r));
  const std::vector<Real> b = rng.normal_vector(rows);

  IncrementalQr inc(rows, max_cols);
  for (Index p = 1; p <= max_cols; ++p) {
    ASSERT_TRUE(inc.append_column(a.col(p - 1)));
    Matrix prefix(rows, p);
    for (Index r = 0; r < rows; ++r)
      for (Index c = 0; c < p; ++c) prefix(r, c) = a(r, c);
    const std::vector<Real> x_inc = inc.solve(b);
    const std::vector<Real> x_batch = QrFactorization(prefix).solve(b);
    for (Index i = 0; i < p; ++i)
      EXPECT_NEAR(x_inc[static_cast<std::size_t>(i)],
                  x_batch[static_cast<std::size_t>(i)], 1e-9)
          << "p=" << p << " i=" << i;
  }
}

TEST(IncrementalQr, NearlyDependentColumnsStayOrthogonal) {
  // Columns differing by 1e-8 perturbations: reorthogonalization must keep
  // Q'Q = I to machine precision.
  Rng rng(27);
  const Index rows = 50;
  IncrementalQr inc(rows, 4);
  const std::vector<Real> base = rng.normal_vector(rows);
  ASSERT_TRUE(inc.append_column(base));
  for (int k = 1; k < 4; ++k) {
    std::vector<Real> c = base;
    for (Real& v : c) v += 1e-8 * rng.normal();
    ASSERT_TRUE(inc.append_column(c, /*dependence_tol=*/1e-12));
  }
  for (Index i = 0; i < 4; ++i)
    for (Index j = 0; j < i; ++j)
      EXPECT_NEAR(dot(inc.q_column(i), inc.q_column(j)), 0.0, 1e-12);
}

TEST(IncrementalQr, RemoveColumnMatchesFreshFactorization) {
  Rng rng(29);
  const Index rows = 30, cols = 6;
  Matrix a(rows, cols);
  for (Index r = 0; r < rows; ++r) rng.fill_normal(a.row(r));
  const std::vector<Real> b = rng.normal_vector(rows);

  for (Index removed = 0; removed < cols; ++removed) {
    IncrementalQr inc(rows, cols);
    for (Index j = 0; j < cols; ++j) ASSERT_TRUE(inc.append_column(a.col(j)));
    inc.remove_column(removed);
    ASSERT_EQ(inc.size(), cols - 1);

    // Reference: batch QR of the retained columns.
    Matrix reduced(rows, cols - 1);
    Index out = 0;
    for (Index j = 0; j < cols; ++j) {
      if (j == removed) continue;
      reduced.set_col(out++, a.col(j));
    }
    const std::vector<Real> x_inc = inc.solve(b);
    const std::vector<Real> x_ref = QrFactorization(reduced).solve(b);
    for (std::size_t i = 0; i < x_inc.size(); ++i)
      EXPECT_NEAR(x_inc[i], x_ref[i], 1e-9) << "removed=" << removed;
  }
}

TEST(IncrementalQr, RemoveKeepsQOrthonormal) {
  Rng rng(30);
  const Index rows = 25, cols = 5;
  IncrementalQr inc(rows, cols);
  for (Index j = 0; j < cols; ++j)
    ASSERT_TRUE(inc.append_column(rng.normal_vector(rows)));
  inc.remove_column(2);
  for (Index i = 0; i < inc.size(); ++i)
    for (Index j = 0; j < inc.size(); ++j)
      EXPECT_NEAR(dot(inc.q_column(i), inc.q_column(j)), i == j ? 1.0 : 0.0,
                  1e-12);
}

TEST(IncrementalQr, RemoveThenAppendStillConsistent) {
  Rng rng(31);
  const Index rows = 20;
  IncrementalQr inc(rows, 4);
  Matrix cols(rows, 4);
  for (Index j = 0; j < 4; ++j) {
    const std::vector<Real> c = rng.normal_vector(rows);
    cols.set_col(j, c);
    if (j < 3) {
      ASSERT_TRUE(inc.append_column(c));
    }
  }
  inc.remove_column(1);
  ASSERT_TRUE(inc.append_column(cols.col(3)));
  // Retained set: {0, 2, 3}.
  Matrix reduced(rows, 3);
  reduced.set_col(0, cols.col(0));
  reduced.set_col(1, cols.col(2));
  reduced.set_col(2, cols.col(3));
  const std::vector<Real> b = rng.normal_vector(rows);
  const std::vector<Real> x_inc = inc.solve(b);
  const std::vector<Real> x_ref = QrFactorization(reduced).solve(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x_inc[i], x_ref[i], 1e-9);
}

TEST(IncrementalQr, RemoveOutOfRangeThrows) {
  Rng rng(32);
  IncrementalQr inc(10, 2);
  ASSERT_TRUE(inc.append_column(rng.normal_vector(10)));
  EXPECT_THROW(inc.remove_column(1), Error);
  EXPECT_THROW(inc.remove_column(-1), Error);
}

TEST(IncrementalQr, CapacityExhaustedThrows) {
  Rng rng(28);
  IncrementalQr inc(5, 2);
  ASSERT_TRUE(inc.append_column(rng.normal_vector(5)));
  ASSERT_TRUE(inc.append_column(rng.normal_vector(5)));
  EXPECT_THROW((void)inc.append_column(rng.normal_vector(5)), Error);
}

}  // namespace
}  // namespace rsm
