#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace rsm {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (Index r = 0; r < 3; ++r)
    for (Index c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
}

TEST(Matrix, ConstructFilled) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(0, 0), 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 2), 3);
  EXPECT_EQ(m(1, 0), 4);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), Error);
}

TEST(Matrix, Identity) {
  Matrix id = Matrix::identity(3);
  for (Index r = 0; r < 3; ++r)
    for (Index c = 0; c < 3; ++c) EXPECT_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9;
  EXPECT_EQ(m(1, 2), 9);
}

TEST(Matrix, ColRoundTrip) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const std::vector<Real> c1 = m.col(1);
  ASSERT_EQ(c1.size(), 3u);
  EXPECT_EQ(c1[0], 2);
  EXPECT_EQ(c1[2], 6);
  m.set_col(0, std::vector<Real>{9, 8, 7});
  EXPECT_EQ(m(0, 0), 9);
  EXPECT_EQ(m(2, 0), 7);
}

TEST(Matrix, Transposed) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t(2, 1), 6);
  EXPECT_EQ(t(0, 0), 1);
}

TEST(Matrix, TransposeTwiceIsIdentityOp) {
  Rng rng(3);
  Matrix m(5, 7);
  for (Index r = 0; r < 5; ++r) rng.fill_normal(m.row(r));
  EXPECT_EQ(max_abs_diff(m.transposed().transposed(), m), 0.0);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), 5);
  EXPECT_EQ(sum(1, 1), 5);
  Matrix diff = a - b;
  EXPECT_EQ(diff(0, 0), -3);
  Matrix scaled = a * 2.0;
  EXPECT_EQ(scaled(1, 0), 6);
  Matrix scaled2 = 0.5 * a;
  EXPECT_EQ(scaled2(0, 1), 1);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(a -= b, Error);
}

TEST(Matrix, MatrixProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1, 0, 2}, {0, 3, 0}};
  const std::vector<Real> x{1, 2, 3};
  const std::vector<Real> y = a * x;
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], 7);
  EXPECT_EQ(y[1], 6);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, SetZero) {
  Matrix m(2, 2, 1.0);
  m.set_zero();
  EXPECT_EQ(m.frobenius_norm(), 0.0);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral) {
  Rng rng(11);
  Matrix m(4, 4);
  for (Index r = 0; r < 4; ++r) rng.fill_normal(m.row(r));
  EXPECT_LT(max_abs_diff(m * Matrix::identity(4), m), 1e-15);
  EXPECT_LT(max_abs_diff(Matrix::identity(4) * m, m), 1e-15);
}

}  // namespace
}  // namespace rsm
