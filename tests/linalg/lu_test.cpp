#include "linalg/lu.hpp"

#include <complex>

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

std::vector<Real> flatten(const Matrix& m) {
  std::vector<Real> out;
  out.reserve(static_cast<std::size_t>(m.size()));
  for (Index r = 0; r < m.rows(); ++r)
    out.insert(out.end(), m.row(r).begin(), m.row(r).end());
  return out;
}

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2, 1, 0}, {1, 3, 1}, {0, 1, 4}};
  const std::vector<Real> x_true{1, -2, 3};
  const std::vector<Real> b = a * x_true;
  const RealLu lu(flatten(a), 3);
  const std::vector<Real> x = lu.solve(b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                                          x_true[static_cast<std::size_t>(i)],
                                          1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  // Without partial pivoting this matrix fails immediately (a00 = 0).
  const Matrix a{{0, 1}, {1, 0}};
  const RealLu lu(flatten(a), 2);
  const std::vector<Real> x = lu.solve({3, 7});
  EXPECT_NEAR(x[0], 7, 1e-14);
  EXPECT_NEAR(x[1], 3, 1e-14);
}

TEST(Lu, SingularThrows) {
  const Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(RealLu(flatten(a), 2), Error);
}

TEST(Lu, Determinant) {
  const Matrix a{{3, 0}, {0, 5}};
  EXPECT_NEAR(RealLu(flatten(a), 2).determinant(), 15.0, 1e-12);
  // Permutation sign: swapping rows flips the determinant.
  const Matrix b{{0, 1}, {1, 0}};
  EXPECT_NEAR(RealLu(flatten(b), 2).determinant(), -1.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  Rng rng(41);
  for (Index n : {1, 2, 5, 20, 50}) {
    Matrix a(n, n);
    for (Index r = 0; r < n; ++r) rng.fill_normal(a.row(r));
    const std::vector<Real> x_true = rng.normal_vector(n);
    const std::vector<Real> b = a * x_true;
    const std::vector<Real> x = RealLu(flatten(a), n).solve(b);
    for (Index i = 0; i < n; ++i)
      EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                  x_true[static_cast<std::size_t>(i)], 1e-8)
          << "n=" << n;
  }
}

TEST(Lu, ComplexSolve) {
  using C = std::complex<Real>;
  // Round-trip a fixed 2x2 complex system.
  const std::vector<C> flat{C{1, 1}, C{1, 0}, C{1, 0}, C{0, -1}};
  const std::vector<C> x_true{C{2, -1}, C{0, 3}};
  std::vector<C> b{flat[0] * x_true[0] + flat[1] * x_true[1],
                   flat[2] * x_true[0] + flat[3] * x_true[1]};
  const ComplexLu lu(flat, 2);
  const std::vector<C> x = lu.solve(b);
  EXPECT_NEAR(std::abs(x[0] - x_true[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - x_true[1]), 0.0, 1e-12);
}

TEST(Lu, ComplexRandomRoundTrip) {
  using C = std::complex<Real>;
  Rng rng(42);
  const Index n = 12;
  std::vector<C> a(static_cast<std::size_t>(n * n));
  for (C& v : a) v = C{rng.normal(), rng.normal()};
  std::vector<C> x_true(static_cast<std::size_t>(n));
  for (C& v : x_true) v = C{rng.normal(), rng.normal()};
  std::vector<C> b(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    C s{};
    for (Index j = 0; j < n; ++j)
      s += a[static_cast<std::size_t>(i * n + j)] *
           x_true[static_cast<std::size_t>(j)];
    b[static_cast<std::size_t>(i)] = s;
  }
  const std::vector<C> x = ComplexLu(a, n).solve(b);
  for (Index i = 0; i < n; ++i)
    EXPECT_LT(std::abs(x[static_cast<std::size_t>(i)] -
                       x_true[static_cast<std::size_t>(i)]),
              1e-9);
}

}  // namespace
}  // namespace rsm
