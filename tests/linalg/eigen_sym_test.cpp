#include "linalg/eigen_sym.hpp"

#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

Matrix random_symmetric(Index n, Rng& rng) {
  Matrix a(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = i; j < n; ++j) {
      const Real v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

TEST(EigenSym, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1;
  a(1, 1) = 5;
  a(2, 2) = 3;
  const SymmetricEigen eig = eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 5, 1e-12);
  EXPECT_NEAR(eig.values[1], 3, 1e-12);
  EXPECT_NEAR(eig.values[2], 1, 1e-12);
}

TEST(EigenSym, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const Matrix a{{2, 1}, {1, 2}};
  const SymmetricEigen eig = eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 3, 1e-12);
  EXPECT_NEAR(eig.values[1], 1, 1e-12);
}

class EigenSymRandom : public ::testing::TestWithParam<int> {};

TEST_P(EigenSymRandom, Reconstruction) {
  const Index n = GetParam();
  Rng rng(static_cast<std::uint64_t>(50 + n));
  const Matrix a = random_symmetric(n, rng);
  const SymmetricEigen eig = eigen_symmetric(a);
  // A == V diag(w) V'.
  Matrix vdw(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j)
      vdw(i, j) = eig.vectors(i, j) * eig.values[static_cast<std::size_t>(j)];
  EXPECT_LT(max_abs_diff(vdw * eig.vectors.transposed(), a), 1e-10 * n);
}

TEST_P(EigenSymRandom, VectorsOrthonormal) {
  const Index n = GetParam();
  Rng rng(static_cast<std::uint64_t>(60 + n));
  const Matrix a = random_symmetric(n, rng);
  const SymmetricEigen eig = eigen_symmetric(a);
  EXPECT_LT(max_abs_diff(gram(eig.vectors), Matrix::identity(n)), 1e-12 * n);
}

TEST_P(EigenSymRandom, ValuesSortedDescending) {
  const Index n = GetParam();
  Rng rng(static_cast<std::uint64_t>(70 + n));
  const SymmetricEigen eig = eigen_symmetric(random_symmetric(n, rng));
  for (std::size_t i = 1; i < eig.values.size(); ++i)
    EXPECT_GE(eig.values[i - 1], eig.values[i]);
}

TEST_P(EigenSymRandom, TraceEqualsSumOfEigenvalues) {
  const Index n = GetParam();
  Rng rng(static_cast<std::uint64_t>(80 + n));
  const Matrix a = random_symmetric(n, rng);
  const SymmetricEigen eig = eigen_symmetric(a);
  Real trace = 0, sum = 0;
  for (Index i = 0; i < n; ++i) trace += a(i, i);
  for (Real v : eig.values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSymRandom,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 50));

TEST(EigenSym, ReadsUpperTriangleOnly) {
  // Garbage below the diagonal must not change the result.
  Matrix a{{2, 1}, {999, 2}};
  const SymmetricEigen eig = eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 3, 1e-12);
  EXPECT_NEAR(eig.values[1], 1, 1e-12);
}

TEST(EigenSym, RejectsNonSquare) {
  EXPECT_THROW(eigen_symmetric(Matrix(2, 3)), Error);
}

}  // namespace
}  // namespace rsm
