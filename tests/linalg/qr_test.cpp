#include "linalg/qr.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

Matrix random_matrix(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  for (Index r = 0; r < rows; ++r) rng.fill_normal(m.row(r));
  return m;
}

TEST(Qr, ExactSquareSolve) {
  const Matrix a{{2, 1}, {1, 3}};
  const std::vector<Real> b{5, 10};
  const std::vector<Real> x = QrFactorization(a).solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Qr, RequiresTallMatrix) {
  EXPECT_THROW(QrFactorization(Matrix(2, 3)), Error);
}

class QrRandom : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QrRandom, ReconstructsA) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 131 + n));
  const Matrix a = random_matrix(m, n, rng);
  const QrFactorization qr(a);
  const Matrix recon = qr.thin_q() * qr.r();
  EXPECT_LT(max_abs_diff(recon, a), 1e-11);
}

TEST_P(QrRandom, ThinQHasOrthonormalColumns) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 137 + n));
  const Matrix a = random_matrix(m, n, rng);
  const Matrix q = QrFactorization(a).thin_q();
  EXPECT_LT(max_abs_diff(gram(q), Matrix::identity(n)), 1e-12);
}

TEST_P(QrRandom, LeastSquaresMatchesNormalEquations) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 139 + n));
  const Matrix a = random_matrix(m, n, rng);
  const std::vector<Real> b = rng.normal_vector(m);
  const std::vector<Real> x_qr = QrFactorization(a).solve(b);

  // Normal equations: (A'A) x = A'b.
  std::vector<Real> atb(static_cast<std::size_t>(n));
  gemv_transposed(a, b, atb);
  const std::vector<Real> x_ne = cholesky_solve(gram(a), atb);
  for (Index i = 0; i < n; ++i)
    EXPECT_NEAR(x_qr[static_cast<std::size_t>(i)],
                x_ne[static_cast<std::size_t>(i)], 1e-8);
}

TEST_P(QrRandom, ResidualOrthogonalToColumnSpace) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 149 + n));
  const Matrix a = random_matrix(m, n, rng);
  const std::vector<Real> b = rng.normal_vector(m);
  const std::vector<Real> x = QrFactorization(a).solve(b);
  const std::vector<Real> residual = vsub(b, a * x);
  std::vector<Real> at_res(static_cast<std::size_t>(n));
  gemv_transposed(a, residual, at_res);
  EXPECT_LT(max_abs(at_res), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrRandom,
                         ::testing::Values(std::tuple{4, 4}, std::tuple{10, 3},
                                           std::tuple{30, 30},
                                           std::tuple{100, 20},
                                           std::tuple{50, 49}));

TEST(Qr, ApplyQtThenQIsIdentity) {
  Rng rng(9);
  const Matrix a = random_matrix(12, 5, rng);
  const QrFactorization qr(a);
  const std::vector<Real> b = rng.normal_vector(12);
  std::vector<Real> work = b;
  qr.apply_qt(work);
  qr.apply_q(work);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(work[i], b[i], 1e-12);
}

TEST(Qr, ConditionEstimateIdentity) {
  EXPECT_NEAR(QrFactorization(Matrix::identity(5)).condition_estimate(), 1.0,
              1e-12);
}

TEST(Qr, DetectsRankDeficiency) {
  // Third column = sum of the first two.
  Matrix a(6, 3);
  Rng rng(10);
  for (Index r = 0; r < 6; ++r) {
    a(r, 0) = rng.normal();
    a(r, 1) = rng.normal();
    a(r, 2) = a(r, 0) + a(r, 1);
  }
  EXPECT_TRUE(QrFactorization(a).rank_deficient(1e-10));
  const Matrix b = random_matrix(6, 3, rng);
  EXPECT_FALSE(QrFactorization(b).rank_deficient(1e-10));
}

TEST(Qr, ZeroColumnHandled) {
  Matrix a(4, 2);
  a(0, 1) = 1;
  a(1, 1) = 2;  // column 0 all zero
  const QrFactorization qr(a);
  EXPECT_TRUE(qr.rank_deficient());
}

TEST(Qr, OneShotHelper) {
  const Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const std::vector<Real> b{1, 2, 3};
  const std::vector<Real> x = least_squares_solve(a, b);
  // Normal equations: A'A = [[2,1],[1,2]], A'b = (4,5) -> x = (1, 2).
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(PivotedQr, FullRankMatchesPlainLeastSquares) {
  Rng rng(17);
  const Matrix a = random_matrix(40, 7, rng);
  const std::vector<Real> b = rng.normal_vector(40);
  const std::vector<Real> x_plain = least_squares_solve(a, b);
  const PivotedQr pqr(a);
  EXPECT_EQ(pqr.rank(), 7);
  const std::vector<Real> x_piv = pqr.solve(b);
  for (Index i = 0; i < 7; ++i)
    EXPECT_NEAR(x_piv[static_cast<std::size_t>(i)],
                x_plain[static_cast<std::size_t>(i)], 1e-9);
}

TEST(PivotedQr, RankDeficientGivesFiniteBasicSolution) {
  // Column 2 duplicates column 0: plain QR back-substitution would divide
  // by a (near-)zero diagonal, but the pivoted factorization must report
  // rank 2 and return a basic solution that zeros the dependent column and
  // still minimizes the residual.
  Matrix a(12, 3);
  Rng rng(18);
  for (Index r = 0; r < 12; ++r) {
    a(r, 0) = rng.normal();
    a(r, 1) = rng.normal();
    a(r, 2) = a(r, 0);
  }
  std::vector<Real> b(12);
  for (Index r = 0; r < 12; ++r)
    b[static_cast<std::size_t>(r)] = 2.0 * a(r, 0) - a(r, 1);

  const PivotedQr pqr(a);
  EXPECT_EQ(pqr.rank(), 2);
  const std::vector<Real> x = pqr.solve(b);
  ASSERT_EQ(x.size(), 3u);
  int zeros = 0;
  for (Real v : x) {
    EXPECT_TRUE(std::isfinite(v));
    if (v == 0.0) ++zeros;
  }
  EXPECT_EQ(zeros, 1);  // exactly one dependent column dropped
  // The fit itself is exact: b lies in the column space.
  const std::vector<Real> residual = vsub(b, a * x);
  EXPECT_LT(max_abs(residual), 1e-10);
}

TEST(PivotedQr, ZeroMatrixHasRankZero) {
  const Matrix a(5, 3);
  const std::vector<Real> b{1, 2, 3, 4, 5};
  const PivotedQr pqr(a);
  EXPECT_EQ(pqr.rank(), 0);
  const std::vector<Real> x = pqr.solve(b);
  for (Real v : x) EXPECT_EQ(v, 0.0);
}

TEST(PivotedQr, PermutationIsValid) {
  Rng rng(19);
  const Matrix a = random_matrix(10, 4, rng);
  const PivotedQr pqr(a);
  std::vector<bool> seen(4, false);
  for (Index j : pqr.permutation()) {
    ASSERT_GE(j, 0);
    ASSERT_LT(j, 4);
    EXPECT_FALSE(seen[static_cast<std::size_t>(j)]);
    seen[static_cast<std::size_t>(j)] = true;
  }
}

TEST(PivotedQr, OneShotHelperHandlesDuplicateColumns) {
  const Matrix a{{1, 1}, {2, 2}, {3, 3}};
  const std::vector<Real> b{2, 4, 6};
  const std::vector<Real> x = least_squares_solve_pivoted(a, b);
  // Both columns equal; the basic solution puts the full weight on one.
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-10);
  EXPECT_TRUE(x[0] == 0.0 || x[1] == 0.0);
}

}  // namespace
}  // namespace rsm
