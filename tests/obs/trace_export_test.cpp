#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace rsm::obs {
namespace {

// Hand-built span trees make chrome_trace_document deterministic and
// independent of whether tracing is compiled in.
SpanStats node(std::string name, std::uint64_t count, double total,
               std::vector<SpanStats> children = {}) {
  SpanStats stats;
  stats.name = std::move(name);
  stats.count = count;
  stats.total_seconds = total;
  stats.min_seconds = total / 2;
  stats.max_seconds = total;
  stats.cpu_seconds = total / 4;
  stats.children = std::move(children);
  return stats;
}

std::vector<ThreadSpanStats> two_thread_fixture() {
  ThreadSpanStats t1;
  t1.thread_ordinal = 1;
  t1.tree = node("", 0, 0,
                 {node("fit", 2, 1.0, {node("fit.qr", 4, 0.4)}),
                  node("validate", 1, 0.5)});
  ThreadSpanStats t2;
  t2.thread_ordinal = 2;
  t2.tree = node("", 0, 0, {node("row", 8, 2.0)});
  return {std::move(t1), std::move(t2)};
}

const JsonValue* find_event(const JsonValue& doc, const std::string& name) {
  for (const JsonValue& event : doc.find("traceEvents")->items())
    if (event.find("name")->as_string() == name) return &event;
  return nullptr;
}

TEST(TraceExportTest, DocumentCarriesMetadataAndSyntheticTimeline) {
  const JsonValue doc =
      chrome_trace_document(two_thread_fixture(), "unit_test");

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->find("process_name")->as_string(), "unit_test");
  EXPECT_EQ(other->find("threads")->as_int(), 2);

  // Metadata: process name at tid 0, one thread_name per ordinal.
  const JsonValue& events = *doc.find("traceEvents");
  ASSERT_TRUE(events.is_array());
  EXPECT_EQ(events.items()[0].find("name")->as_string(), "process_name");
  EXPECT_EQ(events.items()[0].find("tid")->as_int(), 0);
  const JsonValue* thread1 = nullptr;
  for (const JsonValue& event : events.items())
    if (event.find("ph")->as_string() == "M" &&
        event.find("name")->as_string() == "thread_name" &&
        event.find("tid")->as_int() == 1)
      thread1 = &event;
  ASSERT_NE(thread1, nullptr);
  EXPECT_EQ(thread1->find("args")->find("name")->as_string(), "rsm-thread-1");

  // Timeline: top-level spans laid out back to back from t = 0, children
  // nested from their parent's start.
  const JsonValue* fit = find_event(doc, "fit");
  ASSERT_NE(fit, nullptr);
  EXPECT_EQ(fit->find("ph")->as_string(), "X");
  EXPECT_EQ(fit->find("tid")->as_int(), 1);
  EXPECT_DOUBLE_EQ(fit->find("ts")->as_double(), 0.0);
  EXPECT_DOUBLE_EQ(fit->find("dur")->as_double(), 1.0e6);
  EXPECT_EQ(fit->find("args")->find("count")->as_int(), 2);
  EXPECT_DOUBLE_EQ(fit->find("args")->find("cpu_ms")->as_double(), 250.0);

  const JsonValue* qr = find_event(doc, "fit.qr");
  ASSERT_NE(qr, nullptr);
  EXPECT_DOUBLE_EQ(qr->find("ts")->as_double(), 0.0);
  EXPECT_DOUBLE_EQ(qr->find("dur")->as_double(), 0.4e6);

  const JsonValue* validate = find_event(doc, "validate");
  ASSERT_NE(validate, nullptr);
  EXPECT_DOUBLE_EQ(validate->find("ts")->as_double(), 1.0e6);
  EXPECT_DOUBLE_EQ(validate->find("dur")->as_double(), 0.5e6);

  const JsonValue* row = find_event(doc, "row");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->find("tid")->as_int(), 2);
  EXPECT_DOUBLE_EQ(row->find("ts")->as_double(), 0.0);
}

TEST(TraceExportTest, ParentPrunedMidSpanStillContainsItsChildren) {
  // A node reset while open carries completed children but zero own time;
  // the layout must widen it so the children still nest inside.
  ThreadSpanStats t;
  t.thread_ordinal = 1;
  t.tree = node("", 0, 0,
                {node("open", 0, 0.0, {node("a", 1, 0.3), node("b", 1, 0.2)}),
                 node("after", 1, 0.1)});
  const JsonValue doc = chrome_trace_document({t}, "unit_test");

  const JsonValue* open = find_event(doc, "open");
  ASSERT_NE(open, nullptr);
  EXPECT_DOUBLE_EQ(open->find("dur")->as_double(), 0.5e6);
  const JsonValue* b = find_event(doc, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->find("ts")->as_double(), 0.3e6);
  // The sibling after the widened span starts after it, not inside it.
  const JsonValue* after = find_event(doc, "after");
  ASSERT_NE(after, nullptr);
  EXPECT_DOUBLE_EQ(after->find("ts")->as_double(), 0.5e6);
}

TEST(TraceExportTest, IdenticalTreesSerializeIdentically) {
  const JsonValue a = chrome_trace_document(two_thread_fixture(), "p");
  const JsonValue b = chrome_trace_document(two_thread_fixture(), "p");
  EXPECT_EQ(a.dump(), b.dump());
}

TEST(TraceExportTest, EmptySnapshotStillProducesAValidDocument) {
  const JsonValue doc = chrome_trace_document({}, "idle");
  EXPECT_EQ(doc.find("otherData")->find("threads")->as_int(), 0);
  ASSERT_TRUE(doc.find("traceEvents")->is_array());
  EXPECT_EQ(doc.find("traceEvents")->size(), 1u);  // process_name only
}

TEST(TraceExportTest, WriteChromeTraceProducesParseableFile) {
  set_tracing_enabled(true);
  reset_tracing();
  if (kTracingCompiled) {
    RSM_TRACE_SPAN("export_test.outer");
    RSM_TRACE_SPAN("export_test.inner");
  }
  const std::string path = ::testing::TempDir() + "/rsm_trace_export.json";
  ASSERT_TRUE(write_chrome_trace(path, "unit_test"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  if (kTracingCompiled)
    EXPECT_NE(content.find("export_test.inner"), std::string::npos);
  std::remove(path.c_str());
  reset_tracing();
  set_tracing_enabled(kTracingCompiled);
}

TEST(TraceExportTest, WriteChromeTraceFailsGracefullyOnBadPath) {
  EXPECT_FALSE(write_chrome_trace("/nonexistent-dir/x/trace.json", "t"));
}

TEST(TraceExportTest, ExportIfConfiguredFollowsTheEnvironment) {
  // The path is latched on first use; whatever it latched to, the export
  // call must agree with it.
  const std::string& path = trace_export_path();
  EXPECT_EQ(&path, &trace_export_path());  // stable reference
  if (path.empty()) EXPECT_FALSE(export_trace_if_configured("unit_test"));
}

}  // namespace
}  // namespace rsm::obs
