#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace rsm::obs {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing_enabled(true);
    reset_tracing();
    metrics().reset();
  }
  void TearDown() override {
    set_telemetry_sink(nullptr);
    reset_tracing();
    metrics().reset();
    set_tracing_enabled(kTracingCompiled);
  }
};

TEST_F(ReportTest, ReportCarriesEverySchemaField) {
  {
    RSM_TRACE_SPAN("report_test.work");
  }
  metrics().counter("report_test.counter").increment(3);
  metrics().gauge("report_test.gauge").set(1.25);
  metrics().histogram("report_test.hist", {1.0, 2.0}).observe(1.5);

  RingBufferSink ring;
  ring.on_solver_iteration({.solver = "OMP", .step = 0, .selected = 1,
                            .max_correlation = 2.0, .residual_norm = 0.5,
                            .active_count = 1});

  JsonValue results = JsonValue::object();
  results.set("answer", 42);
  const JsonValue doc = build_report("unit_test", std::move(results), &ring);

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema_version")->as_int(), kReportSchemaVersion);
  EXPECT_EQ(doc.find("tool")->as_string(), "unit_test");
  EXPECT_GT(doc.find("generated_unix_ms")->as_int(), 0);

  const JsonValue* tracing = doc.find("tracing");
  ASSERT_NE(tracing, nullptr);
  EXPECT_EQ(tracing->find("compiled")->as_bool(), kTracingCompiled);
  EXPECT_EQ(tracing->find("enabled")->as_bool(), tracing_enabled());

  const JsonValue* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  if (kTracingCompiled) {
    bool found_span = false;
    for (const auto& child : spans->find("children")->items())
      found_span |= child.find("name")->as_string() == "report_test.work";
    EXPECT_TRUE(found_span);
  }

  const JsonValue* m = doc.find("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_GE(m->find("counters")->size(), 1u);
  EXPECT_GE(m->find("gauges")->size(), 1u);
  EXPECT_GE(m->find("histograms")->size(), 1u);

  const JsonValue* telemetry = doc.find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_EQ(telemetry->find("records")->size(), 1u);
  EXPECT_EQ(telemetry->find("dropped")->as_int(), 0);

  EXPECT_EQ(doc.find("results")->find("answer")->as_int(), 42);
}

TEST_F(ReportTest, NullTelemetrySerializesAsNull) {
  const JsonValue doc =
      build_report("unit_test", JsonValue::object(), nullptr);
  ASSERT_NE(doc.find("telemetry"), nullptr);
  EXPECT_EQ(doc.find("telemetry")->kind(), JsonValue::Kind::kNull);
}

TEST_F(ReportTest, SpanNodeSerializesAllStatistics) {
  {
    RSM_TRACE_SPAN("outer_span");
    RSM_TRACE_SPAN("inner_span");
  }
  const JsonValue node = span_to_json(trace_snapshot());
  for (const char* key : {"name", "count", "total_seconds", "min_seconds",
                          "max_seconds", "cpu_seconds", "children"}) {
    EXPECT_NE(node.find(key), nullptr) << key;
  }
}

TEST_F(ReportTest, WriteReportCreatesParseableFile) {
  const std::string path = ::testing::TempDir() + "/rsm_report_test.json";
  JsonValue results = JsonValue::object();
  results.set("ok", true);
  ASSERT_TRUE(write_report(path, "unit_test", std::move(results)));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_NE(content.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(content.find("\"tool\": \"unit_test\""), std::string::npos);
  EXPECT_NE(content.find("\"resources\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ReportTest, WriteReportFailsGracefullyOnBadPath) {
  EXPECT_FALSE(write_report("/nonexistent-dir/x/report.json", "unit_test",
                            JsonValue::object()));
}

}  // namespace
}  // namespace rsm::obs
