#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace rsm::obs {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void TearDown() override { set_telemetry_sink(nullptr); }
};

TEST_F(TelemetryTest, DisabledByDefaultAndEnabledBySink) {
  set_telemetry_sink(nullptr);
  EXPECT_FALSE(telemetry_enabled());
  const auto ring = std::make_shared<RingBufferSink>();
  set_telemetry_sink(ring);
  EXPECT_TRUE(telemetry_enabled());
  set_telemetry_sink(nullptr);
  EXPECT_FALSE(telemetry_enabled());
}

TEST_F(TelemetryTest, SetSinkReturnsPrevious) {
  const auto first = std::make_shared<RingBufferSink>();
  const auto second = std::make_shared<RingBufferSink>();
  set_telemetry_sink(first);
  const std::shared_ptr<TelemetrySink> previous = set_telemetry_sink(second);
  EXPECT_EQ(previous.get(), first.get());
}

TEST_F(TelemetryTest, EmitWithoutSinkIsANoOp) {
  set_telemetry_sink(nullptr);
  EXPECT_NO_THROW(emit(SolverIterationEvent{.solver = "OMP"}));
  EXPECT_NO_THROW(emit(CvFoldEvent{.solver = "LAR"}));
  EXPECT_NO_THROW(emit(CampaignSampleEvent{.sample = 0}));
}

TEST_F(TelemetryTest, RingBufferKeepsAllRecordKinds) {
  const auto ring = std::make_shared<RingBufferSink>();
  set_telemetry_sink(ring);
  emit(SolverIterationEvent{.solver = "OMP",
                            .step = 2,
                            .selected = 17,
                            .max_correlation = 0.5,
                            .residual_norm = 0.25,
                            .active_count = 3});
  emit(CvFoldEvent{.solver = "OMP", .fold = 1, .path_steps = 10,
                   .best_lambda = 4, .best_rmse = 0.03, .skipped = false});
  emit(CampaignSampleEvent{.sample = 9, .attempts = 2, .succeeded = true,
                           .recovered = true, .code = ErrorCode::kOk});
  const std::vector<TelemetryRecord> records = ring->records();
  ASSERT_EQ(records.size(), 3u);
  const auto* it = std::get_if<SolverIterationEvent>(&records[0]);
  ASSERT_NE(it, nullptr);
  EXPECT_EQ(it->selected, 17);
  EXPECT_DOUBLE_EQ(it->residual_norm, 0.25);
  const auto* cv = std::get_if<CvFoldEvent>(&records[1]);
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(cv->best_lambda, 4);
  const auto* cs = std::get_if<CampaignSampleEvent>(&records[2]);
  ASSERT_NE(cs, nullptr);
  EXPECT_TRUE(cs->recovered);
}

TEST_F(TelemetryTest, RingBufferEvictsOldestAndCountsDropped) {
  const auto ring = std::make_shared<RingBufferSink>(3);
  set_telemetry_sink(ring);
  for (int i = 0; i < 5; ++i)
    emit(SolverIterationEvent{.solver = "OMP", .step = i});
  const std::vector<TelemetryRecord> records = ring->records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(ring->dropped(), 2u);
  // Oldest-first: steps 2, 3, 4 survive.
  for (int i = 0; i < 3; ++i) {
    const auto* it = std::get_if<SolverIterationEvent>(&records[i]);
    ASSERT_NE(it, nullptr);
    EXPECT_EQ(it->step, i + 2);
  }
  ring->clear();
  EXPECT_TRUE(ring->records().empty());
  EXPECT_EQ(ring->dropped(), 0u);
}

TEST_F(TelemetryTest, RecordJsonCarriesTypeDiscriminator) {
  const std::string solver_json =
      telemetry_record_json(SolverIterationEvent{.solver = "LAR", .step = 1});
  EXPECT_NE(solver_json.find("\"type\":\"solver_iteration\""),
            std::string::npos);
  EXPECT_NE(solver_json.find("\"solver\":\"LAR\""), std::string::npos);
  const std::string campaign_json = telemetry_record_json(
      CampaignSampleEvent{.sample = 3, .code = ErrorCode::kSingularMatrix});
  EXPECT_NE(campaign_json.find("\"type\":\"campaign_sample\""),
            std::string::npos);
  EXPECT_NE(campaign_json.find(
                "\"error_code\":\"" +
                std::string(error_code_name(ErrorCode::kSingularMatrix)) +
                "\""),
            std::string::npos);
}

TEST_F(TelemetryTest, JsonlSinkRoundTripsRecords) {
  const std::string path =
      ::testing::TempDir() + "/rsm_telemetry_roundtrip.jsonl";
  const SolverIterationEvent ev1{.solver = "OMP", .step = 0, .selected = 5,
                                 .max_correlation = 1.5,
                                 .residual_norm = 0.75, .active_count = 1};
  const CvFoldEvent ev2{.solver = "OMP", .fold = 2, .path_steps = 8,
                        .best_lambda = 3, .best_rmse = 0.125,
                        .skipped = false};
  {
    const auto jsonl = std::make_shared<JsonlFileSink>(path);
    set_telemetry_sink(jsonl);
    emit(ev1);
    emit(ev2);
    set_telemetry_sink(nullptr);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  // The serializer is deterministic, so a file line must equal the record's
  // canonical JSON — a byte-exact round trip.
  EXPECT_EQ(lines[0], telemetry_record_json(ev1));
  EXPECT_EQ(lines[1], telemetry_record_json(ev2));
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, JsonlSinkThrowsOnUnwritablePath) {
  EXPECT_THROW(JsonlFileSink("/nonexistent-dir/x/y/z.jsonl"), Error);
}

}  // namespace
}  // namespace rsm::obs
