#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rsm::obs {
namespace {

TEST(JsonValueTest, ScalarsSerialize) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
  EXPECT_EQ(JsonValue(0.5).dump(), "0.5");
}

TEST(JsonValueTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(JsonValue(-std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(JsonValueTest, DoublesRoundTripExactly) {
  const double value = 0.1 + 0.2;  // not representable as a short decimal
  const std::string dumped = JsonValue(value).dump();
  EXPECT_EQ(std::stod(dumped), value);
}

TEST(JsonValueTest, StringsAreEscaped) {
  EXPECT_EQ(JsonValue("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(JsonValue("tab\there").dump(), "\"tab\\there\"");
  EXPECT_EQ(JsonValue("new\nline").dump(), "\"new\\nline\"");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonValueTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zeta", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
  // Overwrite keeps the original position.
  obj.set("zeta", 9);
  EXPECT_EQ(obj.dump(), "{\"zeta\":9,\"alpha\":2,\"mid\":3}");
  ASSERT_NE(obj.find("alpha"), nullptr);
  EXPECT_EQ(obj.find("alpha")->as_int(), 2);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonValueTest, NestedStructuresDump) {
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back("two");
  JsonValue inner = JsonValue::object();
  inner.set("k", true);
  arr.push_back(std::move(inner));
  JsonValue doc = JsonValue::object();
  doc.set("items", std::move(arr));
  EXPECT_EQ(doc.dump(), "{\"items\":[1,\"two\",{\"k\":true}]}");
  EXPECT_EQ(doc.find("items")->size(), 3u);
}

TEST(JsonValueTest, PrettyPrintIndentsTwoSpaces) {
  JsonValue doc = JsonValue::object();
  doc.set("a", 1);
  const std::string pretty = doc.dump_pretty();
  EXPECT_NE(pretty.find("{\n  \"a\": 1\n}"), std::string::npos);
}

}  // namespace
}  // namespace rsm::obs
