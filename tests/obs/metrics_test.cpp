#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace rsm::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { metrics().reset(); }
  void TearDown() override { metrics().reset(); }
};

TEST_F(MetricsTest, CounterFindOrCreateIsIdempotent) {
  Counter& a = metrics().counter("test.counter");
  Counter& b = metrics().counter("test.counter");
  EXPECT_EQ(&a, &b);
  a.increment();
  b.increment(4);
  EXPECT_EQ(a.value(), 5);
}

TEST_F(MetricsTest, GaugeKeepsLastWrite) {
  Gauge& g = metrics().gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(MetricsTest, HistogramBucketBoundariesAreInclusive) {
  Histogram& h = metrics().histogram("test.hist", {1.0, 2.0, 5.0});
  // A value exactly on an upper bound lands in that bound's bucket.
  h.observe(0.5);   // <= 1.0      -> bucket 0
  h.observe(1.0);   // == bound 0  -> bucket 0
  h.observe(1.001); // <= 2.0      -> bucket 1
  h.observe(2.0);   // == bound 1  -> bucket 1
  h.observe(5.0);   // == bound 2  -> bucket 2
  h.observe(5.001); // overflow    -> bucket 3
  h.observe(1e12);  // overflow    -> bucket 3
  const std::vector<std::int64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(h.count(), 7);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 5.001 + 1e12, 1e-3);
}

TEST_F(MetricsTest, HistogramReregistrationKeepsOriginalBounds) {
  Histogram& a = metrics().histogram("test.rereg", {1.0, 2.0});
  Histogram& b = metrics().histogram("test.rereg", {10.0, 20.0, 30.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(MetricsTest, SnapshotIsSortedByName) {
  // The registry is process-wide and reset() keeps registrations, so other
  // tests' metrics may coexist — assert global sortedness, not exact content.
  metrics().counter("zz.last").increment();
  metrics().counter("aa.first").increment();
  metrics().counter("mm.middle").increment();
  const MetricsSnapshot snap = metrics().snapshot();
  ASSERT_GE(snap.counters.size(), 3u);
  std::vector<std::string> names;
  for (const CounterSample& c : snap.counters) names.push_back(c.name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected : {"aa.first", "mm.middle", "zz.last"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST_F(MetricsTest, ResetZeroesButKeepsRegistrations) {
  Counter& c = metrics().counter("test.reset");
  Histogram& h = metrics().histogram("test.reset.hist", {1.0});
  c.increment(7);
  h.observe(0.5);
  metrics().reset();
  EXPECT_EQ(c.value(), 0);  // the cached reference is still live
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{0, 0}));
  c.increment();
  EXPECT_EQ(metrics().counter("test.reset").value(), 1);
}

TEST_F(MetricsTest, ConcurrentIncrementsAreLossless) {
  Counter& c = metrics().counter("test.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, SnapshotCapturesHistogramShape) {
  Histogram& h = metrics().histogram("test.snap.hist", {1.0, 10.0});
  h.observe(0.5);
  h.observe(100.0);
  const MetricsSnapshot snap = metrics().snapshot();
  const HistogramSample* s = nullptr;
  for (const HistogramSample& cand : snap.histograms)
    if (cand.name == "test.snap.hist") s = &cand;
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->upper_bounds, (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(s->bucket_counts, (std::vector<std::int64_t>{1, 0, 1}));
  EXPECT_EQ(s->count, 2);
}

}  // namespace
}  // namespace rsm::obs
