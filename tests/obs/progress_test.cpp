#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rsm::obs {
namespace {

ProgressSnapshot snapshot(std::int64_t done, std::int64_t total = 100) {
  ProgressSnapshot snap;
  snap.total_rows = total;
  snap.rows_done = done;
  snap.rows_succeeded = done - 1;
  snap.rows_quarantined = 1;
  snap.workers = 4;
  snap.active_workers = 3;
  snap.busy_seconds = 3.0;
  snap.idle_seconds = 1.0;
  return snap;
}

TEST(ProgressTest, ZeroIntervalEmitsEveryCallWithEveryField) {
  std::vector<std::string> lines;
  ProgressReporter reporter(
      {.source = "unit", .interval_seconds = 0},
      [&lines](const std::string& line) { lines.push_back(line); });

  EXPECT_TRUE(reporter.maybe_emit(snapshot(10)));
  EXPECT_TRUE(reporter.maybe_emit(snapshot(20)));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(reporter.events_emitted(), 2);

  const std::string& line = lines[0];  // compact dump: no space after ':'
  for (const char* field :
       {"\"event\":\"progress\"", "\"source\":\"unit\"",
        "\"elapsed_seconds\":", "\"total_rows\":100", "\"rows_done\":10",
        "\"rows_succeeded\":9", "\"rows_quarantined\":1",
        "\"rows_per_second\":", "\"eta_seconds\":", "\"workers\":4",
        "\"active_workers\":3", "\"worker_utilization\":0.75"}) {
    EXPECT_NE(line.find(field), std::string::npos) << field << "\n" << line;
  }
  // JSONL: exactly one line, no embedded newline.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(ProgressTest, LongIntervalRateLimitsAfterTheFirstEmit) {
  int emitted = 0;
  ProgressReporter reporter({.source = "unit", .interval_seconds = 3600},
                            [&emitted](const std::string&) { ++emitted; });
  EXPECT_TRUE(reporter.maybe_emit(snapshot(1)));  // first call always emits
  for (int i = 2; i < 50; ++i) EXPECT_FALSE(reporter.maybe_emit(snapshot(i)));
  EXPECT_EQ(emitted, 1);
  EXPECT_EQ(reporter.events_emitted(), 1);
}

TEST(ProgressTest, FinalSummaryIsUnconditional) {
  std::vector<std::string> lines;
  ProgressReporter reporter(
      {.source = "unit", .interval_seconds = 3600},
      [&lines](const std::string& line) { lines.push_back(line); });
  reporter.maybe_emit(snapshot(1));
  reporter.emit_final(snapshot(100));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"event\":\"summary\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"rows_done\":100"), std::string::npos);
  EXPECT_EQ(reporter.events_emitted(), 2);
}

TEST(ProgressTest, UnknownRatesAndUtilizationSerializeAsNull) {
  std::vector<std::string> lines;
  ProgressReporter reporter(
      {.source = "unit", .interval_seconds = 0},
      [&lines](const std::string& line) { lines.push_back(line); });
  ProgressSnapshot nothing;  // zero rows done, zero busy/idle
  nothing.total_rows = 10;
  nothing.workers = 2;
  reporter.maybe_emit(nothing);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"eta_seconds\":null"), std::string::npos);
  EXPECT_NE(lines[0].find("\"worker_utilization\":null"), std::string::npos);
}

}  // namespace
}  // namespace rsm::obs
