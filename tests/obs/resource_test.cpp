#include "obs/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace rsm::obs {
namespace {

TEST(ResourceTest, SampleIsValidAndPlausibleOnSupportedPlatforms) {
  const ResourceUsage usage = sample_resource_usage();
#if defined(__unix__) || defined(__APPLE__)
  ASSERT_TRUE(usage.valid);
  EXPECT_GT(usage.max_rss_kb, 0);
  EXPECT_GE(usage.minor_faults, 0);
  EXPECT_GE(usage.major_faults, 0);
  EXPECT_GE(usage.user_cpu_seconds, 0.0);
  EXPECT_GE(usage.system_cpu_seconds, 0.0);
#else
  EXPECT_FALSE(usage.valid);
#endif
}

TEST(ResourceTest, CumulativeCountersAreMonotone) {
  const ResourceUsage first = sample_resource_usage();
  // Touch some memory so the second sample has work to show.
  std::vector<char> ballast(1 << 20, 1);
  volatile char sink = ballast[ballast.size() / 2];
  (void)sink;
  const ResourceUsage second = sample_resource_usage();
  if (!first.valid || !second.valid) GTEST_SKIP() << "no getrusage here";
  EXPECT_GE(second.minor_faults, first.minor_faults);
  EXPECT_GE(second.major_faults, first.major_faults);
  EXPECT_GE(second.voluntary_ctx_switches, first.voluntary_ctx_switches);
  EXPECT_GE(second.involuntary_ctx_switches, first.involuntary_ctx_switches);
  EXPECT_GE(second.user_cpu_seconds, first.user_cpu_seconds);
  EXPECT_GE(second.system_cpu_seconds, first.system_cpu_seconds);
  EXPECT_GE(second.max_rss_kb, first.max_rss_kb);
}

TEST(ResourceTest, DeltaSubtractsCountersButKeepsHighWaterMarks) {
  ResourceUsage start;
  start.valid = true;
  start.max_rss_kb = 1000;
  start.current_rss_kb = 900;
  start.minor_faults = 50;
  start.major_faults = 2;
  start.voluntary_ctx_switches = 10;
  start.involuntary_ctx_switches = 1;
  start.user_cpu_seconds = 1.5;
  start.system_cpu_seconds = 0.25;

  ResourceUsage end = start;
  end.max_rss_kb = 1400;
  end.current_rss_kb = 1200;
  end.minor_faults = 80;
  end.major_faults = 5;
  end.voluntary_ctx_switches = 25;
  end.involuntary_ctx_switches = 4;
  end.user_cpu_seconds = 3.0;
  end.system_cpu_seconds = 1.0;

  const ResourceUsage delta = resource_delta(end, start);
  EXPECT_TRUE(delta.valid);
  EXPECT_EQ(delta.max_rss_kb, 1400);      // high-water: end value, unchanged
  EXPECT_EQ(delta.current_rss_kb, 1200);  // point sample: end value
  EXPECT_EQ(delta.minor_faults, 30);
  EXPECT_EQ(delta.major_faults, 3);
  EXPECT_EQ(delta.voluntary_ctx_switches, 15);
  EXPECT_EQ(delta.involuntary_ctx_switches, 3);
  EXPECT_DOUBLE_EQ(delta.user_cpu_seconds, 1.5);
  EXPECT_DOUBLE_EQ(delta.system_cpu_seconds, 0.75);
}

TEST(ResourceTest, JsonCarriesEveryField) {
  ResourceUsage usage;
  usage.valid = true;
  usage.max_rss_kb = 2048;
  usage.minor_faults = 7;
  usage.user_cpu_seconds = 0.5;
  const JsonValue doc = resource_json(usage);
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.find("valid")->as_bool());
  EXPECT_EQ(doc.find("max_rss_kb")->as_int(), 2048);
  EXPECT_EQ(doc.find("minor_faults")->as_int(), 7);
  EXPECT_DOUBLE_EQ(doc.find("user_cpu_seconds")->as_double(), 0.5);
  for (const char* key :
       {"current_rss_kb", "major_faults", "voluntary_ctx_switches",
        "involuntary_ctx_switches", "system_cpu_seconds"}) {
    EXPECT_NE(doc.find(key), nullptr) << key;
  }
}

TEST(ResourceTest, RecordPublishesGauges) {
  metrics().reset();
  ResourceUsage usage;
  usage.valid = true;
  usage.max_rss_kb = 4096;
  usage.voluntary_ctx_switches = 12;
  record_resource_metrics(usage);
  EXPECT_DOUBLE_EQ(metrics().gauge("resource.max_rss_kb").value(), 4096.0);
  EXPECT_DOUBLE_EQ(metrics().gauge("resource.voluntary_ctx_switches").value(),
                   12.0);
  metrics().reset();
}

}  // namespace
}  // namespace rsm::obs
