#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace rsm::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kTracingCompiled)
      GTEST_SKIP() << "built with RSM_TRACING=OFF; spans compile to no-ops";
    set_tracing_enabled(true);
    reset_tracing();
  }
  void TearDown() override {
    reset_tracing();
    set_tracing_enabled(kTracingCompiled);
  }
};

void burn(int loops) {
  volatile double x = 1.0;
  for (int i = 0; i < loops; ++i) x = x * 1.0000001 + 1e-9;
}

TEST_F(TraceTest, RecordsNestedSpans) {
  {
    RSM_TRACE_SPAN("outer");
    burn(1000);
    {
      RSM_TRACE_SPAN("inner");
      burn(1000);
    }
    {
      RSM_TRACE_SPAN("inner");
      burn(1000);
    }
  }
  const SpanStats root = trace_snapshot();
  const SpanStats* outer = root.child("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_GT(outer->total_seconds, 0.0);
  const SpanStats* inner = outer->child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_LE(inner->total_seconds, outer->total_seconds);
  EXPECT_LE(inner->min_seconds, inner->max_seconds);
  // "inner" exists only under "outer" — nesting is positional, not global.
  EXPECT_EQ(root.child("inner"), nullptr);
}

TEST_F(TraceTest, MinMaxBracketEachCall) {
  for (int i = 0; i < 5; ++i) {
    RSM_TRACE_SPAN("repeat");
    burn(100 * (i + 1));
  }
  const SpanStats root = trace_snapshot();
  const SpanStats* node = root.child("repeat");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 5u);
  EXPECT_GE(node->min_seconds, 0.0);
  EXPECT_GE(node->max_seconds, node->min_seconds);
  EXPECT_GE(node->total_seconds, node->max_seconds);
  EXPECT_LE(node->total_seconds, 5 * node->max_seconds + 1e-12);
}

int fib_traced(int n) {
  RSM_TRACE_SPAN("fib");
  if (n <= 1) return n;
  return fib_traced(n - 1) + fib_traced(n - 2);
}

TEST_F(TraceTest, ReentrantSpansNestAsAChain) {
  fib_traced(5);
  // Recursion builds a "fib" chain; every level is reachable and counted.
  SpanStats root = trace_snapshot();
  const SpanStats* node = root.child("fib");
  ASSERT_NE(node, nullptr);
  std::uint64_t total_calls = 0;
  int depth = 0;
  while (node != nullptr) {
    total_calls += node->count;
    node = node->child("fib");
    ++depth;
  }
  // fib(5) makes 15 calls, max recursion depth 5.
  EXPECT_EQ(total_calls, 15u);
  EXPECT_EQ(depth, 5);
  // total_named sums every "fib" node; each level's total includes its
  // recursive children, so the sum dominates the top-level total.
  EXPECT_GE(root.total_named("fib"), root.child("fib")->total_seconds);
}

TEST_F(TraceTest, TotalNamedSumsAcrossSubtrees) {
  {
    RSM_TRACE_SPAN("a");
    { RSM_TRACE_SPAN("x"); burn(100); }
  }
  {
    RSM_TRACE_SPAN("b");
    { RSM_TRACE_SPAN("x"); burn(100); }
  }
  const SpanStats root = trace_snapshot();
  const double ax = root.child("a")->child("x")->total_seconds;
  const double bx = root.child("b")->child("x")->total_seconds;
  EXPECT_DOUBLE_EQ(root.total_named("x"), ax + bx);
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  set_tracing_enabled(false);
  {
    RSM_TRACE_SPAN("ghost");
    burn(100);
  }
  set_tracing_enabled(true);
  const SpanStats root = trace_snapshot();
  EXPECT_EQ(root.child("ghost"), nullptr);
  EXPECT_TRUE(root.children.empty());
}

TEST_F(TraceTest, ResetClearsAccumulatedStats) {
  {
    RSM_TRACE_SPAN("short_lived");
  }
  ASSERT_NE(trace_snapshot().child("short_lived"), nullptr);
  reset_tracing();
  EXPECT_EQ(trace_snapshot().child("short_lived"), nullptr);
}

TEST_F(TraceTest, ExitedThreadSpansMergeIntoSnapshot) {
  std::thread worker([] {
    RSM_TRACE_SPAN("worker.task");
    burn(1000);
  });
  worker.join();
  const SpanStats root = trace_snapshot();
  const SpanStats* node = root.child("worker.task");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 1u);
}

TEST_F(TraceTest, TwoExitedThreadsAccumulateCounts) {
  for (int t = 0; t < 2; ++t) {
    std::thread worker([] {
      for (int i = 0; i < 3; ++i) {
        RSM_TRACE_SPAN("pooled.op");
      }
    });
    worker.join();
  }
  const SpanStats root = trace_snapshot();
  const SpanStats* node = root.child("pooled.op");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 6u);
}

}  // namespace
}  // namespace rsm::obs
