// Durable-I/O primitives: append/atomic-write semantics, structured IoError
// on every failure, and the deterministic filesystem fault injector leaving
// exactly the on-disk states (torn / short / empty) a crash would.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "io/atomic_file.hpp"
#include "io/crc32.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace rsm::io {
namespace {

std::string test_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "rsm_io_" + name;
  std::remove(path.c_str());
  return path;
}

/// Finds an all-faulting injector whose very first op carries `want`, so a
/// test can trigger a specific fault mode deterministically.
FsFaultInjector injector_with_first_kind(FsFaultKind want) {
  for (std::uint64_t seed = 1; seed < 4096; ++seed) {
    FsFaultInjector injector({.fault_rate = 1.0, .seed = seed});
    if (injector.kind(0) == want) return injector;
  }
  ADD_FAILURE() << "no seed produced first-op kind "
                << fs_fault_kind_name(want);
  return FsFaultInjector{};
}

TEST(Crc32Test, MatchesKnownAnswer) {
  // The canonical CRC-32 check value ("123456789" -> 0xcbf43926).
  const char data[] = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xcbf43926u);
}

TEST(Crc32Test, ChainedEqualsWhole) {
  const std::string data = "durable checkpoint bytes";
  const std::uint32_t whole = crc32(data.data(), data.size());
  const std::uint32_t head = crc32(data.data(), 7);
  EXPECT_EQ(crc32(data.data() + 7, data.size() - 7, head), whole);
}

TEST(Fnv1a64Test, EmptyIsOffsetBasis) {
  EXPECT_EQ(fnv1a64(nullptr, 0), kFnvOffsetBasis);
}

TEST(DurableFileTest, WritesAndAppends) {
  const std::string path = test_path("append.bin");
  {
    DurableFile file(path, DurableFile::Mode::kTruncate);
    file.write("hello ");
    file.sync();
  }
  {
    DurableFile file(path, DurableFile::Mode::kAppend);
    file.write("world");
    file.sync();
    EXPECT_EQ(file.write_ops(), 1u);
  }
  EXPECT_EQ(read_file_bytes(path), "hello world");
}

TEST(DurableFileTest, TruncateModeDiscardsOldContent) {
  const std::string path = test_path("truncate.bin");
  { DurableFile(path, DurableFile::Mode::kTruncate).write("old old old"); }
  { DurableFile(path, DurableFile::Mode::kTruncate).write("new"); }
  EXPECT_EQ(read_file_bytes(path), "new");
}

TEST(DurableFileTest, MissingDirectoryThrowsIoError) {
  try {
    DurableFile file("/nonexistent-dir-rsm/x.bin", DurableFile::Mode::kAppend);
    FAIL() << "open should have thrown";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
  }
}

TEST(DurableFileTest, TornWritePersistsHalf) {
  const std::string path = test_path("torn.bin");
  const FsFaultInjector faults =
      injector_with_first_kind(FsFaultKind::kTornWrite);
  DurableFile file(path, DurableFile::Mode::kTruncate, &faults);
  EXPECT_THROW(file.write("0123456789"), IoError);
  EXPECT_EQ(read_file_bytes(path), "01234");  // exactly half
}

TEST(DurableFileTest, ShortWritePersistsAllButOneByte) {
  const std::string path = test_path("short.bin");
  const FsFaultInjector faults =
      injector_with_first_kind(FsFaultKind::kShortWrite);
  DurableFile file(path, DurableFile::Mode::kTruncate, &faults);
  EXPECT_THROW(file.write("0123456789"), IoError);
  EXPECT_EQ(read_file_bytes(path), "012345678");
}

TEST(DurableFileTest, NoSpacePersistsNothing) {
  const std::string path = test_path("nospace.bin");
  const FsFaultInjector faults =
      injector_with_first_kind(FsFaultKind::kNoSpace);
  DurableFile file(path, DurableFile::Mode::kTruncate, &faults);
  EXPECT_THROW(file.write("0123456789"), IoError);
  EXPECT_EQ(read_file_bytes(path), "");
}

TEST(AtomicWriteTest, ReplacesWholeFileAndRemovesTemp) {
  const std::string path = test_path("atomic.bin");
  atomic_write_file(path, "first version");
  EXPECT_EQ(read_file_bytes(path), "first version");
  atomic_write_file(path, "second, longer version of the content");
  EXPECT_EQ(read_file_bytes(path), "second, longer version of the content");
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST(AtomicWriteTest, FaultedWriteLeavesTargetUntouched) {
  const std::string path = test_path("atomic_fault.bin");
  atomic_write_file(path, "precious old content");
  const FsFaultInjector faults =
      injector_with_first_kind(FsFaultKind::kTornWrite);
  EXPECT_THROW(atomic_write_file(path, "replacement that tears", &faults),
               IoError);
  // Old content intact (the tear hit the temp file), temp cleaned up.
  EXPECT_EQ(read_file_bytes(path), "precious old content");
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST(ReadFileBytesTest, MissingFileThrowsIoError) {
  try {
    (void)read_file_bytes(test_path("does_not_exist.bin"));
    FAIL() << "read should have thrown";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
  }
}

TEST(FileExistsTest, ReflectsFilesystem) {
  const std::string path = test_path("exists.bin");
  EXPECT_FALSE(file_exists(path));
  atomic_write_file(path, "x");
  EXPECT_TRUE(file_exists(path));
}

TEST(FsFaultInjectorTest, DeterministicAndSplitsModes) {
  FsFaultInjector injector({.fault_rate = 1.0, .seed = 42});
  bool saw[4] = {};
  for (std::uint64_t op = 0; op < 64; ++op) {
    const FsFaultKind kind = injector.kind(op);
    EXPECT_NE(kind, FsFaultKind::kNone) << "rate 1.0 must always fault";
    EXPECT_EQ(kind, injector.kind(op)) << "kind must be a pure hash";
    saw[static_cast<int>(kind)] = true;
  }
  EXPECT_TRUE(saw[static_cast<int>(FsFaultKind::kTornWrite)]);
  EXPECT_TRUE(saw[static_cast<int>(FsFaultKind::kShortWrite)]);
  EXPECT_TRUE(saw[static_cast<int>(FsFaultKind::kNoSpace)]);
  EXPECT_FALSE(FsFaultInjector{}.enabled());
}

}  // namespace
}  // namespace rsm::io
