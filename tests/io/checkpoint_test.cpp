// Checkpoint format: roundtrip fidelity, every corruption class rejected
// with a structured IoError (truncation, bit flips, version/magic
// mismatches), the sanctioned torn-tail recovery, and the writer's atomic
// self-heal after an injected append fault.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/atomic_file.hpp"
#include "io/checkpoint.hpp"
#include "io/crc32.hpp"
#include "util/errors.hpp"

namespace rsm::io {
namespace {

CheckpointOptions options_for(const std::string& path) {
  CheckpointOptions options;
  options.path = path;
  return options;
}

std::string test_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "rsm_ckpt_" + name;
  std::remove(path.c_str());
  return path;
}

CheckpointHeader test_header() {
  CheckpointHeader header;
  header.sample_matrix_hash = 0x1122334455667788ull;
  header.config_hash = 0x99aabbccddeeff00ull;
  header.total_rows = 5;
  return header;
}

std::vector<CheckpointRecord> test_records() {
  std::vector<CheckpointRecord> records(3);
  records[0].type = CheckpointRecord::Type::kSample;
  records[0].sample = 0;
  records[0].attempts = 1;
  records[0].value = 3.141592653589793;
  records[1].type = CheckpointRecord::Type::kQuarantine;
  records[1].sample = 1;
  records[1].attempts = 3;
  records[1].code = ErrorCode::kSingularMatrix;
  records[1].reason = "MNA matrix singular at escalation 2";
  records[2].type = CheckpointRecord::Type::kSample;
  records[2].sample = 2;
  records[2].attempts = 2;
  records[2].value = -0.0;  // sign bit must survive the roundtrip
  return records;
}

std::string serialize_all(const CheckpointHeader& header,
                          const std::vector<CheckpointRecord>& records) {
  std::string bytes = serialize_header(header);
  for (const CheckpointRecord& record : records)
    bytes.append(serialize_record(record));
  return bytes;
}

void expect_reject(const std::string& path, LoadMode mode,
                   const std::string& why_substring) {
  try {
    (void)load_checkpoint(path, mode);
    FAIL() << "load should have rejected (" << why_substring << ")";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(e.what()).find(why_substring), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(CheckpointFormatTest, WriterRoundtrip) {
  const std::string path = test_path("roundtrip.ckpt");
  const CheckpointHeader header = test_header();
  const std::vector<CheckpointRecord> records = test_records();
  {
    CheckpointWriter writer(options_for(path), header);
    for (const CheckpointRecord& record : records) writer.append(record);
    EXPECT_EQ(writer.records_appended(), 3);
    EXPECT_EQ(writer.rewrites(), 0);
  }
  const CheckpointData data = load_checkpoint(path, LoadMode::kStrict);
  EXPECT_EQ(data.header.version, kCheckpointVersion);
  EXPECT_EQ(data.header.sample_matrix_hash, header.sample_matrix_hash);
  EXPECT_EQ(data.header.config_hash, header.config_hash);
  EXPECT_EQ(data.header.total_rows, header.total_rows);
  EXPECT_FALSE(data.truncated_tail);
  ASSERT_EQ(data.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(data.records[i].type, records[i].type);
    EXPECT_EQ(data.records[i].sample, records[i].sample);
    EXPECT_EQ(data.records[i].attempts, records[i].attempts);
    EXPECT_EQ(data.records[i].code, records[i].code);
    EXPECT_EQ(data.records[i].reason, records[i].reason);
    // Bit-exact, including -0.0.
    EXPECT_EQ(std::signbit(data.records[i].value),
              std::signbit(records[i].value));
    EXPECT_EQ(data.records[i].value, records[i].value);
  }
}

TEST(CheckpointFormatTest, TruncatedHeaderRejected) {
  const std::string path = test_path("short_header.ckpt");
  const std::string bytes = serialize_header(test_header());
  atomic_write_file(path, bytes.substr(0, bytes.size() - 7));
  expect_reject(path, LoadMode::kStrict, "truncated header");
  expect_reject(path, LoadMode::kRecoverTail, "truncated header");
}

TEST(CheckpointFormatTest, BadMagicRejected) {
  const std::string path = test_path("bad_magic.ckpt");
  std::string bytes = serialize_all(test_header(), test_records());
  bytes[0] = 'X';
  atomic_write_file(path, bytes);
  expect_reject(path, LoadMode::kRecoverTail, "bad magic");
}

TEST(CheckpointFormatTest, HeaderBitFlipRejected) {
  const std::string path = test_path("header_flip.ckpt");
  std::string bytes = serialize_all(test_header(), test_records());
  bytes[14] = static_cast<char>(bytes[14] ^ 0x10);  // inside the hash fields
  atomic_write_file(path, bytes);
  expect_reject(path, LoadMode::kRecoverTail, "header CRC mismatch");
}

TEST(CheckpointFormatTest, VersionMismatchRejected) {
  const std::string path = test_path("version.ckpt");
  CheckpointHeader header = test_header();
  header.version = kCheckpointVersion + 1;
  atomic_write_file(path, serialize_header(header));
  expect_reject(path, LoadMode::kRecoverTail, "unsupported version");
}

TEST(CheckpointFormatTest, RecordBitFlipRejectedInBothModes) {
  const std::string path = test_path("record_flip.ckpt");
  const CheckpointHeader header = test_header();
  const std::vector<CheckpointRecord> records = test_records();
  std::string bytes = serialize_header(header);
  const std::size_t first_record_at = bytes.size();
  for (const CheckpointRecord& record : records)
    bytes.append(serialize_record(record));
  // Flip one bit inside the *first* record's payload: a complete record with
  // a failing CRC is corruption, never a recoverable tail — even in
  // kRecoverTail mode.
  bytes[first_record_at + 8] = static_cast<char>(bytes[first_record_at + 8] ^ 1);
  atomic_write_file(path, bytes);
  expect_reject(path, LoadMode::kStrict, "record CRC mismatch");
  expect_reject(path, LoadMode::kRecoverTail, "record CRC mismatch");
}

TEST(CheckpointFormatTest, TornTailStrictRejectsRecoverDrops) {
  const std::string path = test_path("torn_tail.ckpt");
  const std::vector<CheckpointRecord> records = test_records();
  std::string bytes = serialize_all(test_header(), records);
  // Drop the final 3 bytes: the last record is now shorter than its declared
  // length — exactly what an interrupted append leaves behind.
  bytes.resize(bytes.size() - 3);
  atomic_write_file(path, bytes);
  expect_reject(path, LoadMode::kStrict, "torn");
  const CheckpointData data = load_checkpoint(path, LoadMode::kRecoverTail);
  EXPECT_TRUE(data.truncated_tail);
  ASSERT_EQ(data.records.size(), records.size() - 1);
  EXPECT_EQ(data.records.back().sample, records[records.size() - 2].sample);
}

TEST(CheckpointFormatTest, TinyTornTailRecovered) {
  const std::string path = test_path("tiny_tail.ckpt");
  std::string bytes = serialize_all(test_header(), test_records());
  bytes.append("\x01\x07", 2);  // shorter than any record framing
  atomic_write_file(path, bytes);
  expect_reject(path, LoadMode::kStrict, "torn");
  const CheckpointData data = load_checkpoint(path, LoadMode::kRecoverTail);
  EXPECT_TRUE(data.truncated_tail);
  EXPECT_EQ(data.records.size(), test_records().size());
}

TEST(CheckpointFormatTest, UnknownRecordTypeRejected) {
  const std::string path = test_path("unknown_type.ckpt");
  std::string bytes = serialize_header(test_header());
  // Hand-craft a record with type 7 and an otherwise valid frame + CRC.
  std::string frame;
  frame.push_back(static_cast<char>(7));
  for (int i = 0; i < 4; ++i) frame.push_back('\0');  // payload_len = 0
  const std::uint32_t crc = crc32(frame.data(), frame.size());
  for (int i = 0; i < 4; ++i)
    frame.push_back(static_cast<char>((crc >> (8 * i)) & 0xffu));
  bytes.append(frame);
  atomic_write_file(path, bytes);
  expect_reject(path, LoadMode::kRecoverTail, "unknown record type");
}

TEST(CheckpointFormatTest, CorruptLengthFieldRejected) {
  const std::string path = test_path("bad_length.ckpt");
  std::string bytes = serialize_header(test_header());
  // A record claiming a payload far beyond kMaxPayload, with plenty of file
  // after it: corruption, not truncation.
  std::string frame;
  frame.push_back(static_cast<char>(1));
  const std::uint32_t huge = 0x7fffffffu;
  for (int i = 0; i < 4; ++i)
    frame.push_back(static_cast<char>((huge >> (8 * i)) & 0xffu));
  frame.append(2048, 'z');
  bytes.append(frame);
  atomic_write_file(path, bytes);
  expect_reject(path, LoadMode::kRecoverTail, "length field corrupt");
}

TEST(CheckpointFormatTest, QuarantineReasonBoundedOnWrite) {
  const std::string path = test_path("long_reason.ckpt");
  CheckpointRecord record;
  record.type = CheckpointRecord::Type::kQuarantine;
  record.sample = 0;
  record.attempts = 1;
  record.code = ErrorCode::kNoConvergence;
  record.reason.assign(4 * kMaxReasonLength, 'r');
  {
    CheckpointWriter writer(options_for(path), test_header());
    writer.append(record);
  }
  const CheckpointData data = load_checkpoint(path, LoadMode::kStrict);
  ASSERT_EQ(data.records.size(), 1u);
  EXPECT_EQ(data.records[0].reason.size(), kMaxReasonLength);
}

TEST(CheckpointWriterTest, ResumeBaseRewritesExistingRecords) {
  const std::string path = test_path("resume_base.ckpt");
  const std::vector<CheckpointRecord> existing = test_records();
  {
    CheckpointWriter writer(options_for(path), test_header(), existing);
    CheckpointRecord next;
    next.type = CheckpointRecord::Type::kSample;
    next.sample = 3;
    next.value = 2.5;
    writer.append(next);
  }
  const CheckpointData data = load_checkpoint(path, LoadMode::kStrict);
  ASSERT_EQ(data.records.size(), existing.size() + 1);
  EXPECT_EQ(data.records.back().sample, 3);
}

TEST(CheckpointWriterTest, SelfHealsFaultedAppendAtomically) {
  const std::string path = test_path("self_heal.ckpt");
  // Find a schedule whose first faulted op lands on append #1..#3 (op 0
  // clean, so the ctor's base rewrite and recovery rewrites succeed).
  CheckpointOptions options;
  options.path = path;
  std::uint64_t first_fault = 0;
  for (std::uint64_t seed = 1; seed < 65536 && first_fault == 0; ++seed) {
    FsFaultInjector candidate({.fault_rate = 0.25, .seed = seed});
    for (std::uint64_t op = 0; op < 4; ++op) {
      if (candidate.kind(op) != FsFaultKind::kNone) {
        if (op >= 1) {
          options.fs_faults = candidate;
          first_fault = op;
        }
        break;
      }
    }
  }
  ASSERT_GE(first_fault, 1u) << "no usable fault schedule found";

  CheckpointWriter writer(options, test_header());
  const Index total = static_cast<Index>(first_fault) + 2;
  for (Index i = 0; i < total; ++i) {
    CheckpointRecord record;
    record.type = CheckpointRecord::Type::kSample;
    record.sample = i;
    record.value = static_cast<Real>(i) * 0.5;
    writer.append(record);  // append #first_fault faults and self-heals
  }
  EXPECT_GE(writer.rewrites(), 1);
  writer.flush();
  // Despite the injected tear mid-stream the file is clean and complete.
  const CheckpointData data = load_checkpoint(path, LoadMode::kStrict);
  ASSERT_EQ(data.records.size(), static_cast<std::size_t>(total));
  for (Index i = 0; i < total; ++i) {
    EXPECT_EQ(data.records[static_cast<std::size_t>(i)].sample, i);
    EXPECT_EQ(data.records[static_cast<std::size_t>(i)].value,
              static_cast<Real>(i) * 0.5);
  }
}

TEST(CheckpointFormatTest, FailedAttemptCodesRoundtrip) {
  const std::string path = test_path("failed_codes.ckpt");
  std::vector<CheckpointRecord> records(2);
  records[0].type = CheckpointRecord::Type::kSample;
  records[0].sample = 0;
  records[0].attempts = 3;
  records[0].value = 1.5;
  records[0].failed_codes = {ErrorCode::kSingularMatrix,
                             ErrorCode::kNoConvergence};
  records[1].type = CheckpointRecord::Type::kQuarantine;
  records[1].sample = 1;
  records[1].attempts = 2;
  records[1].code = ErrorCode::kDeadlineExceeded;
  records[1].reason = "watchdog";
  records[1].failed_codes = {ErrorCode::kNoConvergence,
                             ErrorCode::kDeadlineExceeded};
  {
    CheckpointWriter writer(options_for(path), test_header());
    for (const CheckpointRecord& record : records) writer.append(record);
  }
  const CheckpointData data = load_checkpoint(path, LoadMode::kStrict);
  ASSERT_EQ(data.records.size(), 2u);
  EXPECT_EQ(data.records[0].failed_codes, records[0].failed_codes);
  EXPECT_EQ(data.records[1].failed_codes, records[1].failed_codes);
  EXPECT_EQ(data.records[1].code, ErrorCode::kDeadlineExceeded);
}

TEST(CheckpointFormatTest, SalvageKeepsPrefixPastMidStreamBitFlip) {
  const std::string path = test_path("salvage_flip.ckpt");
  const CheckpointHeader header = test_header();
  const std::vector<CheckpointRecord> records = test_records();
  std::string bytes = serialize_header(header);
  std::size_t second_record_at = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i == 1) second_record_at = bytes.size();
    bytes.append(serialize_record(records[i]));
  }
  bytes[second_record_at + 8] =
      static_cast<char>(bytes[second_record_at + 8] ^ 1);
  atomic_write_file(path, bytes);
  // Strict and recover-tail refuse a mid-stream flip; salvage keeps the
  // valid prefix and flags what it did.
  expect_reject(path, LoadMode::kStrict, "record CRC mismatch");
  expect_reject(path, LoadMode::kRecoverTail, "record CRC mismatch");
  const CheckpointData data = load_checkpoint(path, LoadMode::kSalvage);
  EXPECT_TRUE(data.salvaged_corruption);
  EXPECT_FALSE(data.truncated_tail);
  ASSERT_EQ(data.records.size(), 1u);
  EXPECT_EQ(data.records[0].sample, records[0].sample);
}

// ---- sharded checkpoints --------------------------------------------------

void write_shard(const std::string& base, int shard,
                 const std::vector<CheckpointRecord>& records,
                 const CheckpointHeader& header) {
  CheckpointWriter writer(options_for(shard_path(base, shard)), header);
  for (const CheckpointRecord& record : records) writer.append(record);
}

CheckpointRecord sample_record(Index row, Real value) {
  CheckpointRecord record;
  record.type = CheckpointRecord::Type::kSample;
  record.sample = row;
  record.attempts = 1;
  record.value = value;
  return record;
}

/// Fresh base path with no stale shards from a previous test-binary run.
std::string shard_test_path(const std::string& name) {
  const std::string base = test_path(name);
  (void)remove_shard_files(base);
  return base;
}

TEST(CheckpointShardTest, ShardPathDiscoveryAndRemoval) {
  const std::string base = shard_test_path("discovery.ckpt");
  EXPECT_EQ(shard_path(base, 3), base + ".shard3.log");
  EXPECT_TRUE(find_shard_paths(base).empty());

  const CheckpointHeader header = test_header();
  write_shard(base, 2, {sample_record(0, 1.0)}, header);
  write_shard(base, 0, {sample_record(1, 2.0)}, header);
  write_shard(base, 10, {sample_record(2, 3.0)}, header);
  const std::vector<std::string> found = find_shard_paths(base);
  ASSERT_EQ(found.size(), 3u);  // ordered by shard index, missing ones fine
  EXPECT_EQ(found[0], shard_path(base, 0));
  EXPECT_EQ(found[1], shard_path(base, 2));
  EXPECT_EQ(found[2], shard_path(base, 10));

  EXPECT_EQ(remove_shard_files(base), 3);
  EXPECT_TRUE(find_shard_paths(base).empty());
}

TEST(CheckpointShardTest, MergeCombinesBaseAndShardsRowSorted) {
  const std::string base = shard_test_path("merge.ckpt");
  const CheckpointHeader header = test_header();
  {
    CheckpointWriter writer(options_for(base), header);
    writer.append(sample_record(0, 0.5));
  }
  write_shard(base, 0, {sample_record(4, 4.5), sample_record(1, 1.5)}, header);
  write_shard(base, 1, {sample_record(3, 3.5)}, header);

  ShardMergeOutcome outcome;
  const CheckpointData data = load_sharded_checkpoint(base, &outcome);
  EXPECT_TRUE(outcome.base_loaded);
  EXPECT_EQ(outcome.shards_found, 2);
  EXPECT_EQ(outcome.shards_merged, 2);
  EXPECT_EQ(outcome.shards_unreadable, 0);
  EXPECT_EQ(outcome.duplicate_rows, 0);
  ASSERT_EQ(data.records.size(), 4u);
  // Row-sorted regardless of append order across sources; row 2 is a hole.
  const Index expected_rows[] = {0, 1, 3, 4};
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(data.records[i].sample, expected_rows[i]);
  (void)remove_shard_files(base);
}

TEST(CheckpointShardTest, MergeSalvagesTornShardTail) {
  const std::string base = shard_test_path("torn_shard.ckpt");
  const CheckpointHeader header = test_header();
  {
    CheckpointWriter writer(options_for(base), header);
    writer.append(sample_record(0, 0.5));
  }
  // Shard with a torn trailing record — the classic SIGKILL artifact.
  std::string bytes = serialize_header(header);
  bytes.append(serialize_record(sample_record(1, 1.5)));
  bytes.append(serialize_record(sample_record(2, 2.5)));
  bytes.resize(bytes.size() - 3);
  atomic_write_file(shard_path(base, 1), bytes);

  ShardMergeOutcome outcome;
  const CheckpointData data = load_sharded_checkpoint(base, &outcome);
  EXPECT_EQ(outcome.shards_merged, 1);
  EXPECT_EQ(outcome.torn_tails, 1);
  EXPECT_TRUE(data.truncated_tail);
  ASSERT_EQ(data.records.size(), 2u);  // rows 0 and 1; the torn row 2 redone
  EXPECT_EQ(data.records[1].sample, 1);
  (void)remove_shard_files(base);
}

TEST(CheckpointShardTest, MergeSalvagesBitFlippedShardKeepsPrefix) {
  const std::string base = shard_test_path("flipped_shard.ckpt");
  const CheckpointHeader header = test_header();
  {
    CheckpointWriter writer(options_for(base), header);
    writer.append(sample_record(0, 0.5));
  }
  std::string bytes = serialize_header(header);
  bytes.append(serialize_record(sample_record(1, 1.5)));
  const std::size_t second_at = bytes.size();
  bytes.append(serialize_record(sample_record(2, 2.5)));
  bytes[second_at + 8] = static_cast<char>(bytes[second_at + 8] ^ 0x20);
  atomic_write_file(shard_path(base, 0), bytes);

  ShardMergeOutcome outcome;
  const CheckpointData data = load_sharded_checkpoint(base, &outcome);
  EXPECT_EQ(outcome.shards_merged, 1);
  EXPECT_EQ(outcome.corrupt_salvaged, 1);
  EXPECT_TRUE(data.salvaged_corruption);
  ASSERT_EQ(data.records.size(), 2u);  // base row 0 + shard's valid row 1
  EXPECT_EQ(data.records[0].sample, 0);
  EXPECT_EQ(data.records[1].sample, 1);
  (void)remove_shard_files(base);
}

TEST(CheckpointShardTest, MergeDropsMismatchedShardWhole) {
  const std::string base = shard_test_path("mismatch_shard.ckpt");
  const CheckpointHeader header = test_header();
  {
    CheckpointWriter writer(options_for(base), header);
    writer.append(sample_record(0, 0.5));
  }
  CheckpointHeader other = header;
  other.config_hash ^= 0xdeadbeefull;  // a different campaign's shard
  write_shard(base, 0, {sample_record(1, 1.5)}, other);
  // And a shard that is not a checkpoint file at all.
  atomic_write_file(shard_path(base, 1), "not a checkpoint");

  ShardMergeOutcome outcome;
  const CheckpointData data = load_sharded_checkpoint(base, &outcome);
  EXPECT_EQ(outcome.shards_found, 2);
  EXPECT_EQ(outcome.shards_merged, 0);
  EXPECT_EQ(outcome.shards_unreadable, 2);
  ASSERT_EQ(data.records.size(), 1u);
  EXPECT_EQ(data.records[0].sample, 0);
  (void)remove_shard_files(base);
}

TEST(CheckpointShardTest, MergeDuplicateRowLastWriteWins) {
  const std::string base = shard_test_path("dup_shard.ckpt");
  const CheckpointHeader header = test_header();
  {
    CheckpointWriter writer(options_for(base), header);
    writer.append(sample_record(1, 1.0));
  }
  write_shard(base, 0, {sample_record(1, 2.0)}, header);   // duplicates base
  write_shard(base, 1, {sample_record(1, 3.0)}, header);   // and shard 0

  ShardMergeOutcome outcome;
  const CheckpointData data = load_sharded_checkpoint(base, &outcome);
  EXPECT_EQ(outcome.duplicate_rows, 2);
  ASSERT_EQ(data.records.size(), 1u);
  EXPECT_EQ(data.records[0].sample, 1);
  EXPECT_EQ(data.records[0].value, 3.0);  // highest-indexed shard wrote last
  (void)remove_shard_files(base);
}

TEST(CheckpointShardTest, MergeWithoutBaseUsesShardHeader) {
  const std::string base = shard_test_path("no_base.ckpt");
  const CheckpointHeader header = test_header();
  write_shard(base, 3, {sample_record(2, 2.5)}, header);

  ShardMergeOutcome outcome;
  const CheckpointData data = load_sharded_checkpoint(base, &outcome);
  EXPECT_FALSE(outcome.base_loaded);
  EXPECT_EQ(outcome.shards_merged, 1);
  EXPECT_EQ(data.header.config_hash, header.config_hash);
  ASSERT_EQ(data.records.size(), 1u);
  EXPECT_EQ(data.records[0].sample, 2);
  (void)remove_shard_files(base);
}

TEST(CheckpointShardTest, MergeMissingEverythingRejected) {
  const std::string base = shard_test_path("nothing.ckpt");
  try {
    (void)load_sharded_checkpoint(base);
    FAIL() << "merge should reject when nothing exists";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

TEST(CheckpointShardTest, MergeRejectsRowBeyondTotalRows) {
  const std::string base = shard_test_path("overflow_row.ckpt");
  const CheckpointHeader header = test_header();  // total_rows = 5
  write_shard(base, 0, {sample_record(9, 9.5)}, header);
  try {
    (void)load_sharded_checkpoint(base);
    FAIL() << "merge should reject an out-of-range row";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("outside"), std::string::npos);
  }
  (void)remove_shard_files(base);
}

TEST(CheckpointFingerprintTest, SensitiveToEveryInput) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Matrix b = a;
  b(1, 1) = 4.0000000001;
  EXPECT_NE(matrix_fingerprint(a), matrix_fingerprint(b));
  EXPECT_EQ(matrix_fingerprint(a), matrix_fingerprint(a));

  FaultInjector plan_a({.fault_rate = 0.1, .seed = 7});
  FaultInjector plan_b({.fault_rate = 0.2, .seed = 7});
  EXPECT_NE(fault_plan_fingerprint(plan_a, 3),
            fault_plan_fingerprint(plan_b, 3));
  EXPECT_NE(fault_plan_fingerprint(plan_a, 3),
            fault_plan_fingerprint(plan_a, 4));
  EXPECT_EQ(fault_plan_fingerprint(plan_a, 3),
            fault_plan_fingerprint(plan_a, 3));
}

}  // namespace
}  // namespace rsm::io
