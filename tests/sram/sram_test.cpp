#include "sram/sram.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace rsm::sram {
namespace {

SramConfig small_config() {
  SramConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  return cfg;
}

class SramTest : public ::testing::Test {
 protected:
  SramWorkload workload_{small_config()};
};

TEST(SramVariableMapTest, PaperVariableCount) {
  // Default geometry reproduces the paper's 21 310 independent variables.
  EXPECT_EQ(SramVariableMap(SramConfig{}).total(), 21310);
}

TEST(SramVariableMapTest, LayoutIsDisjointAndComplete) {
  const SramConfig cfg = small_config();
  const SramVariableMap vm(cfg);
  std::vector<int> hits(static_cast<std::size_t>(vm.total()), 0);
  for (Index g = 0; g < vm.num_globals; ++g) ++hits[static_cast<std::size_t>(vm.global(g))];
  for (Index s = 0; s < cfg.driver_stages; ++s)
    for (Index p = 0; p < 2; ++p) ++hits[static_cast<std::size_t>(vm.driver(s, p))];
  for (Index c = 0; c < cfg.replica_cells; ++c)
    for (Index p = 0; p < 2; ++p) ++hits[static_cast<std::size_t>(vm.replica(c, p))];
  for (Index p = 0; p < vm.num_sense_vars; ++p) ++hits[static_cast<std::size_t>(vm.sense(p))];
  for (Index p = 0; p < vm.num_misc_vars; ++p) ++hits[static_cast<std::size_t>(vm.misc(p))];
  for (Index r = 0; r < cfg.rows; ++r)
    for (Index c = 0; c < cfg.cols; ++c) ++hits[static_cast<std::size_t>(vm.cell(r, c))];
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(SramTest, NominalDelayInRange) {
  EXPECT_GT(workload_.nominal(), 2e-11);
  EXPECT_LT(workload_.nominal(), 2e-9);
}

TEST_F(SramTest, Deterministic) {
  Rng rng(3);
  const std::vector<Real> dy = rng.normal_vector(workload_.num_variables());
  EXPECT_EQ(workload_.evaluate(dy), workload_.evaluate(dy));
}

TEST_F(SramTest, WeakerAccessedCellSlowsRead) {
  const SramVariableMap& vm = workload_.variable_map();
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()), 0.0);
  dy[static_cast<std::size_t>(vm.cell(0, 0))] = 2.0;  // +2 sigma Vth
  const Real slow = workload_.evaluate(dy);
  dy[static_cast<std::size_t>(vm.cell(0, 0))] = -2.0;
  const Real fast = workload_.evaluate(dy);
  EXPECT_GT(slow, workload_.nominal());
  EXPECT_LT(fast, workload_.nominal());
}

TEST_F(SramTest, DelayMonotonicInAccessedCellVth) {
  const SramVariableMap& vm = workload_.variable_map();
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()), 0.0);
  Real prev = -1;
  for (Real v = -3.0; v <= 3.0; v += 0.5) {
    dy[static_cast<std::size_t>(vm.cell(0, 0))] = v;
    const Real d = workload_.evaluate(dy);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST_F(SramTest, SparsityStructure) {
  // An off-path cell moves the delay by orders of magnitude less than the
  // accessed cell — the Fig. 6 sparse coefficient spectrum.
  const SramVariableMap& vm = workload_.variable_map();
  const Real nominal = workload_.nominal();
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()), 0.0);

  dy[static_cast<std::size_t>(vm.cell(0, 0))] = 1.0;
  const Real d_accessed = std::abs(workload_.evaluate(dy) - nominal);
  dy[static_cast<std::size_t>(vm.cell(0, 0))] = 0.0;

  // Same column (bit-line leakage): small but nonzero.
  dy[static_cast<std::size_t>(vm.cell(5, 0))] = 1.0;
  const Real d_column = std::abs(workload_.evaluate(dy) - nominal);
  dy[static_cast<std::size_t>(vm.cell(5, 0))] = 0.0;

  // Different column (supply droop only): tiny.
  dy[static_cast<std::size_t>(vm.cell(5, 3))] = 1.0;
  const Real d_far = std::abs(workload_.evaluate(dy) - nominal);

  EXPECT_GT(d_accessed, 100 * d_column);
  EXPECT_GT(d_column, d_far);
  EXPECT_GT(d_accessed, 1e4 * d_far);
  EXPECT_GT(d_far, 0.0);  // nothing is exactly zero (droop coupling)
}

TEST_F(SramTest, ReplicaCellsSetTiming) {
  const SramVariableMap& vm = workload_.variable_map();
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()), 0.0);
  // Slower replica (higher Vth) -> later firing -> more bit-line swing ->
  // total delay shifts measurably.
  for (Index c = 0; c < small_config().replica_cells; ++c)
    dy[static_cast<std::size_t>(vm.replica(c, 0))] = 1.5;
  const Real shifted = workload_.evaluate(dy);
  EXPECT_GT(std::abs(shifted - workload_.nominal()),
            0.01 * workload_.nominal());
}

TEST_F(SramTest, SenseAmpOffsetShiftsDelay) {
  const SramVariableMap& vm = workload_.variable_map();
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()), 0.0);
  dy[static_cast<std::size_t>(vm.sense(0))] = 2.0;
  const Real with_offset = workload_.evaluate(dy);
  EXPECT_NE(with_offset, workload_.nominal());
}

TEST_F(SramTest, DriverChainVariablesMatter) {
  const SramVariableMap& vm = workload_.variable_map();
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()), 0.0);
  for (Index s = 0; s < small_config().driver_stages; ++s)
    dy[static_cast<std::size_t>(vm.driver(s, 0))] = 2.0;  // weaker drivers
  EXPECT_GT(workload_.evaluate(dy), workload_.nominal());
}

TEST_F(SramTest, MonteCarloSpreadReasonable) {
  Rng rng(11);
  std::vector<Real> delays;
  for (int i = 0; i < 200; ++i)
    delays.push_back(
        workload_.evaluate(rng.normal_vector(workload_.num_variables())));
  // Coefficient of variation: a few percent to a few tens of percent.
  const Real cv = stddev(delays) / mean(delays);
  EXPECT_GT(cv, 0.01);
  EXPECT_LT(cv, 0.5);
}

TEST_F(SramTest, MarginMetricIsPositiveNominally) {
  const std::vector<Real> zeros(
      static_cast<std::size_t>(workload_.num_variables()), 0.0);
  const auto m = workload_.evaluate_metrics(zeros);
  EXPECT_GT(m.margin, 0.05);  // healthy sensing margin
  EXPECT_LT(m.margin, 1.0);
  EXPECT_EQ(m.delay, workload_.nominal());
}

TEST_F(SramTest, WeakCellShrinksMargin) {
  const sram::SramVariableMap& vm = workload_.variable_map();
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()),
                       0.0);
  const Real nominal_margin = workload_.evaluate_metrics(dy).margin;
  dy[static_cast<std::size_t>(vm.cell(0, 0))] = 2.5;  // weak accessed cell
  EXPECT_LT(workload_.evaluate_metrics(dy).margin, nominal_margin);
}

TEST_F(SramTest, SaOffsetEatsMarginLinearly) {
  const sram::SramVariableMap& vm = workload_.variable_map();
  std::vector<Real> dy(static_cast<std::size_t>(workload_.num_variables()),
                       0.0);
  const Real m0 = workload_.evaluate_metrics(dy).margin;
  dy[static_cast<std::size_t>(vm.sense(0))] = 1.0;
  const Real m1 = workload_.evaluate_metrics(dy).margin;
  dy[static_cast<std::size_t>(vm.sense(0))] = 2.0;
  const Real m2 = workload_.evaluate_metrics(dy).margin;
  EXPECT_NEAR(m0 - m1, workload_.config().sigma_sa_offset, 1e-12);
  EXPECT_NEAR(m1 - m2, m0 - m1, 1e-12);  // exactly linear in the offset var
}

TEST_F(SramTest, WrongSampleSizeThrows) {
  EXPECT_THROW((void)workload_.evaluate(std::vector<Real>(3, 0.0)), Error);
}

TEST(Sram, GeometryScalesVariableCount) {
  SramConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  const SramWorkload w(cfg);
  EXPECT_EQ(w.num_variables(),
            16 + 6 + 2 * cfg.driver_stages + 2 * cfg.replica_cells + 6 + 2);
}

}  // namespace
}  // namespace rsm::sram
