// Multi-threaded stress for the observability and control-plane state that
// campaign scaling (sharding, batching, async) will lean on: the metrics
// registry, telemetry sink swapping under emission, trace spans across
// thread exits, cancellation tokens, and the signal flags. Run under
// -DRSM_SANITIZE=thread this is the repo's race detector; the assertions
// themselves are deliberately coarse — the point is the interleavings.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/cancellation.hpp"
#include "util/errors.hpp"
#include "util/signals.hpp"
#include "util/sync.hpp"

namespace rsm {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 2000;

TEST(ConcurrencyStress, MetricsRegistryHammer) {
  obs::metrics().reset();
  std::atomic<bool> stop{false};

  // A reader thread snapshots (and occasionally resets) while writers both
  // register new metrics and update cached ones.
  std::thread reader([&stop] {
    int rounds = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snap = obs::metrics().snapshot();
      if (++rounds % 64 == 0 && !snap.counters.empty())
        obs::metrics().reset();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      obs::Counter& cached =
          obs::metrics().counter("stress.cached." + std::to_string(t % 3));
      obs::Histogram& hist = obs::metrics().histogram(
          "stress.latency", {1e-6, 1e-4, 1e-2, 1.0});
      for (int i = 0; i < kIterations; ++i) {
        cached.increment();
        obs::metrics()
            .counter("stress.reregistered." + std::to_string(i % 5))
            .increment();
        obs::metrics().gauge("stress.gauge").set(static_cast<double>(i));
        hist.observe(static_cast<double>(i % 7) * 1e-3);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Registrations survive resets; the registry stayed structurally sound.
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  EXPECT_GE(snap.counters.size(), 8u);  // 3 cached + 5 reregistered
  obs::metrics().reset();
}

TEST(ConcurrencyStress, TelemetrySinkSwapUnderEmission) {
  const std::string jsonl_path =
      ::testing::TempDir() + "rsm_stress_telemetry.jsonl";
  std::remove(jsonl_path.c_str());

  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([t, &stop] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        if (!obs::telemetry_enabled()) {
          std::this_thread::yield();
          continue;
        }
        obs::SolverIterationEvent ev;
        ev.solver = "STRESS";
        ev.step = i;
        ev.selected = t;
        obs::emit(ev);
        obs::CvFoldEvent fold;
        fold.solver = "STRESS";
        fold.fold = t;
        obs::emit(fold);
        obs::CampaignSampleEvent sample;
        sample.sample = i;
        sample.succeeded = true;
        obs::emit(sample);
      }
    });
  }

  // Swap between a ring buffer, a JSONL file sink, and disabled while the
  // emitters run: sink installation must never tear an in-flight emit.
  auto ring = std::make_shared<obs::RingBufferSink>(1024);
  for (int round = 0; round < 50; ++round) {
    obs::set_telemetry_sink(ring);
    std::this_thread::yield();
    obs::set_telemetry_sink(
        std::make_shared<obs::JsonlFileSink>(jsonl_path));
    std::this_thread::yield();
    obs::set_telemetry_sink(nullptr);
  }
  obs::set_telemetry_sink(ring);
  obs::CvFoldEvent final_event;
  final_event.solver = "STRESS-FINAL";
  obs::emit(final_event);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& e : emitters) e.join();
  obs::set_telemetry_sink(nullptr);

  EXPECT_FALSE(ring->records().empty());
  std::remove(jsonl_path.c_str());
}

TEST(ConcurrencyStress, TraceSpansAcrossThreadExit) {
  if (!obs::kTracingCompiled) GTEST_SKIP() << "built with RSM_TRACING=OFF";
  obs::set_tracing_enabled(true);
  obs::reset_tracing();

  std::atomic<bool> stop{false};
  // Snapshot continuously while waves of short-lived threads record spans
  // and exit (each exit merges its tree into the retired accumulator).
  std::thread snapshotter([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::SpanStats snap = obs::trace_snapshot();
      static_cast<void>(snap);
      std::this_thread::yield();
    }
  });

  for (int wave = 0; wave < 20; ++wave) {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < 50; ++i) {
          RSM_TRACE_SPAN("stress.outer");
          RSM_TRACE_SPAN("stress.inner");
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const obs::SpanStats snap = obs::trace_snapshot();
  const obs::SpanStats* outer = snap.child("stress.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count,
            static_cast<std::uint64_t>(20 * kThreads * 50));
  obs::reset_tracing();
}

TEST(ConcurrencyStress, CancellationFansOutToEveryWorker) {
  CancellationSource source;
  std::atomic<int> unwound{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&source, &unwound] {
      RunControl control;
      control.cancel = source.token();
      control.deadline = Deadline::after_seconds(30.0);  // cancel wins
      const ScopedRunControl scope(control);
      try {
        for (;;) check_cooperative_stop("stress.loop");
      } catch (const DeadlineExceededError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
        unwound.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  source.request_cancel();
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(unwound.load(), kThreads);
}

TEST(ConcurrencyStress, SignalFlagsReadableFromAllThreads) {
  // The handler performs the stores on whichever thread raise() runs on;
  // every other thread must be able to poll the flags racelessly. One raise
  // only — a second would _Exit(128+signo) by design.
  CancellationSource source;
  install_signal_cancellation(&source);
  ASSERT_FALSE(signal_cancellation_requested());

  std::atomic<bool> stop{false};
  std::atomic<int> observed_cancel{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      bool counted = false;
      while (!stop.load(std::memory_order_relaxed)) {
        if (signal_cancellation_requested() && !counted) {
          EXPECT_EQ(signal_exit_status(), 128 + SIGTERM);
          observed_cancel.fetch_add(1, std::memory_order_relaxed);
          counted = true;
        }
        std::this_thread::yield();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::raise(SIGTERM);
  // Wait (bounded) until every reader has observed the flag, so a starved
  // thread on a loaded CI box cannot flake the assertion below.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (observed_cancel.load(std::memory_order_relaxed) < kThreads &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();

  EXPECT_TRUE(signal_cancellation_requested());
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_EQ(observed_cancel.load(), kThreads);
}

// Drives every edge of the lock-rank table (docs/static-analysis.md) from
// many threads at once: each worker repeatedly walks a strictly-ascending
// chain across all the ranks the production tree uses, so TSan sees the
// checker's thread-local bookkeeping under real contention and any rank
// regression (a violation would abort via the default handler) surfaces
// here before a production interleaving finds it.
TEST(ConcurrencyStress, LockRankEdgeChain) {
  // Mirrors the tree's rank assignments, one Mutex per production rank.
  Mutex campaign_progress{"stress.campaign.progress",
                          lock_rank::kCampaignProgress};
  Mutex pool_coord{"stress.pool.coord", lock_rank::kPoolCoord};
  Mutex pool_queue{"stress.pool.queue", lock_rank::kPoolQueue};
  Mutex telemetry_slot{"stress.telemetry.slot", lock_rank::kTelemetrySlot};
  Mutex telemetry_ring{"stress.telemetry.ring", lock_rank::kTelemetryRing};
  Mutex telemetry_jsonl{"stress.telemetry.jsonl",
                        lock_rank::kTelemetryJsonl};
  Mutex metrics_registry{"stress.metrics", lock_rank::kMetricsRegistry};
  Mutex trace_retired{"stress.trace.retired", lock_rank::kTraceRetired};
  Mutex progress_reporter{"stress.progress.reporter",
                          lock_rank::kProgressReporter};
  Mutex log{"stress.log", lock_rank::kLog};
  Mutex scratch{"stress.scratch"};  // kDefault: always acquirable last

  std::int64_t guarded_sum RSM_GUARDED_BY(scratch) = 0;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIterations / 4; ++i) {
        {
          // The full ascending chain: every production rank in order.
          MutexLock l0(campaign_progress);
          MutexLock l1(pool_coord);
          MutexLock l2(pool_queue);
          MutexLock l3(telemetry_slot);
          MutexLock l4(telemetry_ring);
          MutexLock l5(telemetry_jsonl);
          MutexLock l6(metrics_registry);
          MutexLock l7(trace_retired);
          MutexLock l8(progress_reporter);
          MutexLock l9(log);
          MutexLock l10(scratch);
          ++guarded_sum;
        }
        {
          // The real campaign edge: progress serialization -> reporter ->
          // log, skipping the middle of the table (gaps must be legal).
          MutexLock l0(campaign_progress);
          MutexLock l1(progress_reporter);
          MutexLock l2(log);
        }
        {
          // Telemetry emission under the sink slot, then logging.
          MutexLock l0(telemetry_slot);
          MutexLock l1(telemetry_ring);
          MutexLock l2(log);
        }
        if (i % 8 == 0) {
          // try_lock on a contended high-rank lock while holding a low
          // rank: both outcomes must keep the held stack balanced.
          MutexLock l0(pool_coord);
          if (log.try_lock()) log.unlock();
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  {
    MutexLock lock(scratch);
    EXPECT_EQ(guarded_sum, static_cast<std::int64_t>(kThreads) *
                               (kIterations / 4));
  }
  EXPECT_TRUE(held_locks_for_testing().empty());
}

}  // namespace
}  // namespace rsm
