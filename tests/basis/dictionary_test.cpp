#include "basis/dictionary.hpp"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "basis/hermite.hpp"
#include "linalg/blas.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace rsm {
namespace {

TEST(Dictionary, SizesMatchGenerators) {
  EXPECT_EQ(BasisDictionary::linear(10).size(), 11);
  EXPECT_EQ(BasisDictionary::quadratic(10).size(), 66);
  EXPECT_EQ(BasisDictionary::total_degree(3, 3).size(), 20);
}

TEST(Dictionary, EvaluateMatchesHandComputation) {
  const BasisDictionary dict = BasisDictionary::quadratic(2);
  const std::vector<Real> sample{0.5, -1.5};
  // Index order: 1, y0, y1, H2(y0), H2(y1), y0*y1.
  EXPECT_NEAR(dict.evaluate(0, sample), 1.0, 1e-14);
  EXPECT_NEAR(dict.evaluate(1, sample), 0.5, 1e-14);
  EXPECT_NEAR(dict.evaluate(2, sample), -1.5, 1e-14);
  EXPECT_NEAR(dict.evaluate(3, sample), (0.25 - 1) / std::sqrt(2.0), 1e-14);
  EXPECT_NEAR(dict.evaluate(4, sample), (2.25 - 1) / std::sqrt(2.0), 1e-14);
  EXPECT_NEAR(dict.evaluate(5, sample), 0.5 * -1.5, 1e-14);
}

TEST(Dictionary, DesignMatrixMatchesPointwiseEvaluation) {
  Rng rng(55);
  const BasisDictionary dict = BasisDictionary::quadratic(5);
  const Matrix samples = monte_carlo_normal(20, 5, rng);
  const Matrix g = dict.design_matrix(samples);
  ASSERT_EQ(g.rows(), 20);
  ASSERT_EQ(g.cols(), dict.size());
  for (Index k = 0; k < 20; ++k)
    for (Index m = 0; m < dict.size(); ++m)
      EXPECT_NEAR(g(k, m), dict.evaluate(m, samples.row(k)), 1e-13);
}

TEST(Dictionary, DesignRowMatchesDesignMatrix) {
  Rng rng(56);
  const BasisDictionary dict = BasisDictionary::total_degree(3, 4);
  const Matrix samples = monte_carlo_normal(4, 3, rng);
  const Matrix g = dict.design_matrix(samples);
  for (Index k = 0; k < 4; ++k) {
    const std::vector<Real> row = dict.design_row(samples.row(k));
    for (Index m = 0; m < dict.size(); ++m)
      EXPECT_NEAR(row[static_cast<std::size_t>(m)], g(k, m), 1e-13);
  }
}

TEST(Dictionary, EvaluateColumnMatches) {
  Rng rng(57);
  const BasisDictionary dict = BasisDictionary::quadratic(4);
  const Matrix samples = monte_carlo_normal(15, 4, rng);
  const Matrix g = dict.design_matrix(samples);
  for (Index m : {0L, 3L, 7L, dict.size() - 1}) {
    const std::vector<Real> col = dict.evaluate_column(m, samples);
    for (Index k = 0; k < 15; ++k)
      EXPECT_NEAR(col[static_cast<std::size_t>(k)], g(k, m), 1e-13);
  }
}

TEST(Dictionary, EmpiricalOrthonormality) {
  // (1/K) G'G -> I as K grows: the sampled basis vectors approximate the
  // continuous orthonormality of eq. (2). This is the property OMP's
  // inner-product criterion (eq. 13/14) relies on.
  Rng rng(58);
  const BasisDictionary dict = BasisDictionary::quadratic(3);
  const Index k = 60000;
  const Matrix samples = monte_carlo_normal(k, 3, rng);
  const Matrix g = dict.design_matrix(samples);
  Matrix gtg = gram(g);
  gtg *= Real{1} / static_cast<Real>(k);
  EXPECT_LT(max_abs_diff(gtg, Matrix::identity(dict.size())), 0.05);
}

TEST(Dictionary, MaxOrder) {
  EXPECT_EQ(BasisDictionary::linear(4).max_order(), 1);
  EXPECT_EQ(BasisDictionary::quadratic(4).max_order(), 2);
  EXPECT_EQ(BasisDictionary::total_degree(2, 6).max_order(), 6);
}

TEST(Dictionary, SaveLoadRoundTrip) {
  const BasisDictionary dict = BasisDictionary::hyperbolic(7, 3);
  std::stringstream ss;
  dict.save(ss);
  const BasisDictionary loaded = BasisDictionary::load(ss);
  ASSERT_EQ(loaded.size(), dict.size());
  ASSERT_EQ(loaded.num_variables(), dict.num_variables());
  EXPECT_EQ(loaded.max_order(), dict.max_order());
  for (Index m = 0; m < dict.size(); ++m)
    EXPECT_EQ(loaded.index(m), dict.index(m)) << "index " << m;
}

TEST(Dictionary, SavedModelReloadsAgainstSavedDictionary) {
  // The deployment round trip: dictionary + model saved, both reloaded,
  // predictions identical.
  Rng rng(59);
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(5));
  std::stringstream dict_file;
  dict->save(dict_file);

  auto reloaded =
      std::make_shared<BasisDictionary>(BasisDictionary::load(dict_file));
  const Matrix samples = monte_carlo_normal(10, 5, rng);
  for (Index k = 0; k < 10; ++k)
    for (Index m = 0; m < dict->size(); ++m)
      EXPECT_DOUBLE_EQ(reloaded->evaluate(m, samples.row(k)),
                       dict->evaluate(m, samples.row(k)));
}

TEST(Dictionary, LoadRejectsGarbage) {
  std::stringstream ss("who knows");
  EXPECT_THROW((void)BasisDictionary::load(ss), Error);
}

TEST(Dictionary, RejectsOutOfRangeVariable) {
  std::vector<MultiIndex> idx{MultiIndex::linear(5)};
  EXPECT_THROW(BasisDictionary(3, idx), Error);
}

TEST(Dictionary, RejectsWrongSampleSize) {
  const BasisDictionary dict = BasisDictionary::linear(4);
  EXPECT_THROW((void)dict.evaluate(0, std::vector<Real>{1.0, 2.0}), Error);
}

}  // namespace
}  // namespace rsm
