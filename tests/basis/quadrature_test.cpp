#include "basis/quadrature.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "basis/hermite.hpp"

namespace rsm {
namespace {

TEST(GaussHermite, WeightsSumToOne) {
  for (int n : {1, 2, 5, 10, 20, 40}) {
    const QuadratureRule rule = gauss_hermite(n);
    Real sum = 0;
    for (Real w : rule.weights) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-12) << "n=" << n;
  }
}

TEST(GaussHermite, NormalMoments) {
  // E[X^k] for X ~ N(0,1): 0,1,0,3,0,15 for k=1..6.
  const Real expected[] = {0, 1, 0, 3, 0, 15};
  for (int k = 1; k <= 6; ++k) {
    const Real got = normal_expectation(
        [k](Real x) { return std::pow(x, k); }, 10);
    EXPECT_NEAR(got, expected[k - 1], 1e-9) << "k=" << k;
  }
}

TEST(GaussHermite, ExactForPolynomialsUpToDegree2nMinus1) {
  // 3-point rule integrates degree-5 polynomials exactly.
  const Real got = normal_expectation(
      [](Real x) { return x * x * x * x + 2 * x * x + x + 1; }, 3);
  EXPECT_NEAR(got, 3 + 2 + 0 + 1, 1e-10);
}

TEST(GaussHermite, NodesSymmetric) {
  const QuadratureRule rule = gauss_hermite(8);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(rule.nodes[static_cast<std::size_t>(i)],
                -rule.nodes[static_cast<std::size_t>(7 - i)], 1e-12);
    EXPECT_NEAR(rule.weights[static_cast<std::size_t>(i)],
                rule.weights[static_cast<std::size_t>(7 - i)], 1e-12);
  }
}

TEST(GaussHermite, OddRuleHasZeroNode) {
  const QuadratureRule rule = gauss_hermite(7);
  EXPECT_NEAR(rule.nodes[3], 0.0, 1e-12);
}

class HermiteOrthonormality
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HermiteOrthonormality, Eq2HoldsExactly) {
  // The paper's eq. (2): E[g_i g_j] = delta_ij under the normal weight.
  const auto [i, j] = GetParam();
  const Real inner = normal_expectation(
      [i = i, j = j](Real x) {
        return hermite_normalized(i, x) * hermite_normalized(j, x);
      },
      /*num_points=*/(i + j) / 2 + 2);
  EXPECT_NEAR(inner, i == j ? 1.0 : 0.0, 1e-9) << "i=" << i << " j=" << j;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, HermiteOrthonormality,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 5, 8),
                       ::testing::Values(0, 1, 2, 3, 5, 8)));

TEST(GaussHermite, TwoDimensionalExpectation) {
  // E[x^2 y^2] = 1 for independent standard normals; E[x y] = 0.
  EXPECT_NEAR(normal_expectation_2d([](Real x, Real y) { return x * x * y * y; },
                                    6),
              1.0, 1e-10);
  EXPECT_NEAR(normal_expectation_2d([](Real x, Real y) { return x * y; }, 6),
              0.0, 1e-12);
}

TEST(GaussHermite, GaussianIntegrand) {
  // E[e^X] = sqrt(e) for X ~ N(0,1); needs a large rule (non-polynomial).
  EXPECT_NEAR(normal_expectation([](Real x) { return std::exp(x); }, 40),
              std::exp(0.5), 1e-10);
}

}  // namespace
}  // namespace rsm
