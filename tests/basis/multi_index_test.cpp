#include "basis/multi_index.hpp"

#include <algorithm>

#include <gtest/gtest.h>

namespace rsm {
namespace {

TEST(MultiIndex, ConstantProperties) {
  const MultiIndex c = MultiIndex::constant();
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.total_degree(), 0);
  EXPECT_EQ(c.to_string(), "1");
}

TEST(MultiIndex, Factories) {
  EXPECT_EQ(MultiIndex::linear(3).total_degree(), 1);
  EXPECT_EQ(MultiIndex::square(3).total_degree(), 2);
  EXPECT_EQ(MultiIndex::cross(1, 4).total_degree(), 2);
  EXPECT_EQ(MultiIndex::linear(3).to_string(), "H1(y3)");
  EXPECT_EQ(MultiIndex::square(0).to_string(), "H2(y0)");
}

TEST(MultiIndex, CrossOrdersVariables) {
  // Terms are sorted by variable regardless of construction order.
  EXPECT_EQ(MultiIndex::cross(4, 1), MultiIndex::cross(1, 4));
}

TEST(MultiIndex, CrossSameVariableThrows) {
  EXPECT_THROW(MultiIndex::cross(2, 2), Error);
}

TEST(MultiIndex, DuplicateVariableThrows) {
  EXPECT_THROW(MultiIndex({{0, 1}, {0, 2}}), Error);
}

TEST(MultiIndex, ZeroOrderTermThrows) {
  EXPECT_THROW(MultiIndex({{0, 0}}), Error);
}

TEST(MultiIndexGenerators, LinearCount) {
  // M = N + 1 (constant + N linear terms).
  EXPECT_EQ(make_linear_indices(630).size(), 631u);
  const auto idx = make_linear_indices(3);
  EXPECT_TRUE(idx[0].is_constant());
  EXPECT_EQ(idx[2], MultiIndex::linear(1));
}

TEST(MultiIndexGenerators, QuadraticCountMatchesPaper) {
  // The paper's 200-variable quadratic model has 20 301 coefficients.
  EXPECT_EQ(make_quadratic_indices(200).size(), 20301u);
  // And the 2-variable case enumerates 1 + 2 + 2 + 1 = 6.
  EXPECT_EQ(make_quadratic_indices(2).size(), 6u);
}

TEST(MultiIndexGenerators, QuadraticStructure) {
  const auto idx = make_quadratic_indices(3);
  // Layout: constant, 3 linear, 3 squares, 3 cross.
  ASSERT_EQ(idx.size(), 10u);
  EXPECT_TRUE(idx[0].is_constant());
  for (int i = 1; i <= 3; ++i) EXPECT_EQ(idx[static_cast<std::size_t>(i)].total_degree(), 1);
  for (int i = 4; i <= 9; ++i) EXPECT_EQ(idx[static_cast<std::size_t>(i)].total_degree(), 2);
  EXPECT_EQ(idx[4], MultiIndex::square(0));
  EXPECT_EQ(idx[7], MultiIndex::cross(0, 1));
  EXPECT_EQ(idx[9], MultiIndex::cross(1, 2));
}

TEST(MultiIndexGenerators, TotalDegreeCountIsBinomial) {
  // binomial(N + d, d) indices.
  EXPECT_EQ(make_total_degree_indices(3, 2).size(), 10u);   // C(5,2)
  EXPECT_EQ(make_total_degree_indices(4, 3).size(), 35u);   // C(7,3)
  EXPECT_EQ(make_total_degree_indices(2, 5).size(), 21u);   // C(7,5)
  EXPECT_NEAR(total_degree_count(3, 2), 10.0, 1e-9);
  EXPECT_NEAR(total_degree_count(4, 3), 35.0, 1e-9);
}

TEST(MultiIndexGenerators, TotalDegreeGradedOrdering) {
  const auto idx = make_total_degree_indices(3, 3);
  for (std::size_t i = 1; i < idx.size(); ++i)
    EXPECT_LE(idx[i - 1].total_degree(), idx[i].total_degree());
}

TEST(MultiIndexGenerators, TotalDegreeEqualsQuadraticSet) {
  // Total-degree-2 and the quadratic generator produce the same set
  // (possibly different order).
  const auto a = make_total_degree_indices(4, 2);
  const auto b = make_quadratic_indices(4);
  ASSERT_EQ(a.size(), b.size());
  for (const MultiIndex& mi : b) {
    EXPECT_NE(std::find(a.begin(), a.end(), mi), a.end())
        << "missing " << mi.to_string();
  }
}

TEST(MultiIndexGenerators, MaxCountGuard) {
  EXPECT_THROW(make_total_degree_indices(100, 5, /*max_count=*/1000), Error);
}

TEST(MultiIndexGenerators, HyperbolicMembershipRule) {
  // prod (order_i + 1) <= degree + 1, checked exhaustively for N=3, d=4.
  const auto idx = make_hyperbolic_indices(3, 4);
  for (const MultiIndex& mi : idx) {
    long product = 1;
    for (const IndexTerm& t : mi.terms()) product *= t.order + 1;
    EXPECT_LE(product, 5) << mi.to_string();
  }
  // And completeness: every admissible index is present.
  const auto full = make_total_degree_indices(3, 4);
  std::size_t admissible = 0;
  for (const MultiIndex& mi : full) {
    long product = 1;
    for (const IndexTerm& t : mi.terms()) product *= t.order + 1;
    if (product <= 5) {
      ++admissible;
      EXPECT_NE(std::find(idx.begin(), idx.end(), mi), idx.end())
          << "missing " << mi.to_string();
    }
  }
  EXPECT_EQ(idx.size(), admissible);
}

TEST(MultiIndexGenerators, HyperbolicPrunesHighInteractions) {
  const auto idx = make_hyperbolic_indices(4, 4);
  // H4 on a single variable is in (5 <= 5)...
  bool has_h4 = false, has_h2h2 = false;
  for (const MultiIndex& mi : idx) {
    if (mi == MultiIndex({{0, 4}})) has_h4 = true;
    if (mi == MultiIndex({{0, 2}, {1, 2}})) has_h2h2 = true;
  }
  EXPECT_TRUE(has_h4);
  // ...but H2*H2 is out (9 > 5).
  EXPECT_FALSE(has_h2h2);
}

TEST(MultiIndexGenerators, HyperbolicMuchSmallerThanTotalDegree) {
  // Degree-4 over 30 variables: total-degree has C(34,4) = 46376 indices;
  // hyperbolic keeps growth near-linear in N.
  const auto hyp = make_hyperbolic_indices(30, 4);
  EXPECT_LT(hyp.size(), 1200u);
  EXPECT_GT(hyp.size(), 120u);  // still contains all 1-D terms + crosses
}

TEST(MultiIndexGenerators, HyperbolicDegree1IsLinear) {
  const auto hyp = make_hyperbolic_indices(6, 1);
  const auto lin = make_linear_indices(6);
  ASSERT_EQ(hyp.size(), lin.size());
  for (const MultiIndex& mi : lin)
    EXPECT_NE(std::find(hyp.begin(), hyp.end(), mi), hyp.end());
}

}  // namespace
}  // namespace rsm
