#include "basis/hermite.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace rsm {
namespace {

TEST(Hermite, UnnormalizedClosedForms) {
  // He_0..He_4 closed forms.
  for (Real x : {-2.0, -0.5, 0.0, 1.0, 3.0}) {
    EXPECT_DOUBLE_EQ(hermite_he(0, x), 1.0);
    EXPECT_DOUBLE_EQ(hermite_he(1, x), x);
    EXPECT_NEAR(hermite_he(2, x), x * x - 1, 1e-12);
    EXPECT_NEAR(hermite_he(3, x), x * x * x - 3 * x, 1e-12);
    EXPECT_NEAR(hermite_he(4, x), x * x * x * x - 6 * x * x + 3, 1e-11);
  }
}

TEST(Hermite, NormalizedMatchesPaperEq3) {
  // g_3(dy) = (dy^2 - 1)/sqrt(2) in the paper's numbering (order 2 here).
  for (Real x : {-1.5, 0.0, 0.7, 2.0}) {
    EXPECT_NEAR(hermite_normalized(2, x), (x * x - 1) / std::sqrt(2.0), 1e-12);
  }
}

TEST(Hermite, NormalizationFactor) {
  // g_n = He_n / sqrt(n!).
  Real factorial = 1;
  for (int n = 0; n <= 10; ++n) {
    if (n > 0) factorial *= n;
    for (Real x : {-1.0, 0.3, 2.5}) {
      EXPECT_NEAR(hermite_normalized(n, x), hermite_he(n, x) / std::sqrt(factorial),
                  1e-9 * std::abs(hermite_he(n, x)) + 1e-12)
          << "n=" << n << " x=" << x;
    }
  }
}

TEST(Hermite, AllOrdersMatchesSingle) {
  const int max_order = 8;
  std::vector<Real> all(max_order + 1);
  for (Real x : {-2.0, 0.0, 1.3}) {
    hermite_normalized_all(max_order, x, all);
    for (int n = 0; n <= max_order; ++n)
      EXPECT_NEAR(all[static_cast<std::size_t>(n)], hermite_normalized(n, x),
                  1e-12);
  }
}

TEST(Hermite, DerivativeIdentity) {
  // g_n'(x) = sqrt(n) g_{n-1}(x); check against finite differences.
  const Real h = 1e-6;
  for (int n = 1; n <= 6; ++n) {
    for (Real x : {-1.0, 0.2, 1.7}) {
      const Real fd =
          (hermite_normalized(n, x + h) - hermite_normalized(n, x - h)) /
          (2 * h);
      EXPECT_NEAR(hermite_normalized_derivative(n, x), fd, 1e-5)
          << "n=" << n << " x=" << x;
    }
  }
  EXPECT_EQ(hermite_normalized_derivative(0, 1.0), 0.0);
}

TEST(Hermite, RecurrenceStableAtHighOrder) {
  // The normalized recurrence must not overflow where He_n/sqrt(n!) is O(1).
  const Real v = hermite_normalized(50, 1.0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_LT(std::abs(v), 100.0);
}

TEST(Hermite, NegativeOrderThrows) {
  EXPECT_THROW((void)hermite_he(-1, 0.0), Error);
  EXPECT_THROW((void)hermite_normalized(-2, 0.0), Error);
}

}  // namespace
}  // namespace rsm
