// Parametric yield analysis — the paper's motivating application.
//
//   build/examples/yield_analysis [--train 400] [--mc 200000]
//
// Flow: simulate the two-stage OpAmp at a few hundred variation samples,
// fit sparse models of all four metrics with OMP, then predict performance
// distributions and the joint parametric yield against a spec sheet by
// Monte Carlo **on the models** (microseconds per sample instead of a
// Spectre run each). A direct-simulation yield estimate on a small sample
// validates the model-based number.
#include <cmath>
#include <cstdio>

#include "circuits/opamp.hpp"
#include "core/pipeline.hpp"
#include "core/yield.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace rsm;
  CliArgs args;
  args.add_option("variables", "200", "OpAmp variation variables");
  args.add_option("train", "400", "training samples (simulator runs)");
  args.add_option("mc", "200000", "model-based Monte Carlo samples");
  args.add_option("check", "2000", "direct-simulation validation samples");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("yield_analysis").c_str());
    return 0;
  }

  circuits::OpAmpConfig cfg;
  cfg.num_variables = args.get_int("variables");
  const circuits::OpAmpWorkload opamp(cfg);
  const Index n = opamp.num_variables();

  // Spec sheet relative to nominal performance.
  const circuits::OpAmpMetrics nom = opamp.nominal();
  Specification spec_gain;   // gain >= nominal - 1.5 dB
  spec_gain.lower = nom.gain_db - 1.5;
  Specification spec_bw;     // bandwidth >= 80% of nominal
  spec_bw.lower = 0.8 * nom.bandwidth_hz;
  Specification spec_power;  // power <= nominal + 15%
  spec_power.upper = 1.15 * nom.power_w;
  Specification spec_offset; // |offset| <= 8 mV
  spec_offset.lower = -8e-3;
  spec_offset.upper = 8e-3;
  const Specification specs[] = {spec_gain, spec_bw, spec_power, spec_offset};

  std::printf("spec sheet (vs nominal gain %.1f dB, bw %.3g Hz, power %.0f uW)"
              ":\n  gain >= %.1f dB, bw >= %.3g Hz, power <= %.0f uW, "
              "|offset| <= 8 mV\n\n",
              nom.gain_db, nom.bandwidth_hz, nom.power_w * 1e6,
              spec_gain.lower, spec_bw.lower, spec_power.upper * 1e6);

  // --- Fit the four models.
  Rng rng(77);
  const Index k_train = args.get_int("train");
  const Matrix train = monte_carlo_normal(k_train, n, rng);
  std::vector<circuits::OpAmpMetrics> sims;
  sims.reserve(static_cast<std::size_t>(k_train));
  WallTimer sim_timer;
  for (Index k = 0; k < k_train; ++k) sims.push_back(opamp.evaluate(train.row(k)));
  std::printf("simulated %ld training samples in %.2f s\n",
              static_cast<long>(k_train), sim_timer.seconds());

  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  std::vector<SparseModel> models;
  for (circuits::OpAmpMetric metric : circuits::kAllOpAmpMetrics) {
    std::vector<Real> f(static_cast<std::size_t>(k_train));
    for (Index k = 0; k < k_train; ++k)
      f[static_cast<std::size_t>(k)] =
          sims[static_cast<std::size_t>(k)].get(metric);
    BuildOptions opt;
    opt.max_lambda = 40;
    models.push_back(build_model(dict, train, f, opt).model);
  }

  // --- Model-predicted distributions.
  Table dist({"metric", "mean", "stddev", "0.1% quantile", "99.9% quantile"});
  for (std::size_t i = 0; i < models.size(); ++i) {
    Rng mc_rng(100 + i);
    const DistributionEstimate est =
        estimate_distribution(models[i], 50000, mc_rng);
    dist.add_row({circuits::opamp_metric_name(circuits::kAllOpAmpMetrics[i]),
                  format_sig(est.summary.mean, 4),
                  format_sig(est.summary.stddev, 3),
                  format_sig(est.quantile_values.front(), 4),
                  format_sig(est.quantile_values.back(), 4)});
  }
  std::printf("\nmodel-predicted distributions (50k model evaluations):\n%s",
              dist.render().c_str());

  // --- Per-metric and joint yield from the models.
  WallTimer yield_timer;
  Table ytable({"metric", "model-based yield", "analytic (linear)"});
  const SparseModel* model_ptrs[4];
  for (std::size_t i = 0; i < models.size(); ++i) {
    model_ptrs[i] = &models[i];
    Rng y_rng(200 + i);
    const YieldResult y =
        estimate_yield(models[i], specs[i], args.get_int("mc"), y_rng);
    ytable.add_row({circuits::opamp_metric_name(circuits::kAllOpAmpMetrics[i]),
                    format_pct(y.yield),
                    format_pct(analytic_linear_yield(models[i], specs[i]))});
  }
  Rng joint_rng(300);
  const YieldResult joint =
      estimate_joint_yield(model_ptrs, specs, args.get_int("mc"), joint_rng);
  std::printf("\n%s", ytable.render().c_str());
  std::printf("joint parametric yield (model MC, %ld samples in %.2f s): "
              "%.2f%% +/- %.2f%%\n",
              static_cast<long>(args.get_int("mc")), yield_timer.seconds(),
              100 * joint.yield, 100 * joint.standard_error);

  // --- Validate against direct simulation on a small sample.
  const Index k_check = args.get_int("check");
  Rng check_rng(400);
  Index pass = 0;
  WallTimer check_timer;
  std::vector<Real> dy(static_cast<std::size_t>(n));
  for (Index k = 0; k < k_check; ++k) {
    check_rng.fill_normal(dy);
    const circuits::OpAmpMetrics m = opamp.evaluate(dy);
    const Real values[] = {m.gain_db, m.bandwidth_hz, m.power_w, m.offset_v};
    bool ok = true;
    for (int i = 0; i < 4; ++i) ok = ok && specs[i].accepts(values[i]);
    pass += ok ? 1 : 0;
  }
  const Real sim_yield = static_cast<Real>(pass) / static_cast<Real>(k_check);
  const Real sim_se =
      std::sqrt(sim_yield * (1 - sim_yield) / static_cast<Real>(k_check));
  std::printf("direct-simulation yield   (%ld simulator runs in %.2f s): "
              "%.2f%% +/- %.2f%%\n",
              static_cast<long>(k_check), check_timer.seconds(),
              100 * sim_yield, 100 * sim_se);
  std::printf("\n(with a real transistor-level simulator those %ld validation"
              " runs are the\n expensive part — the whole point of building "
              "the model first)\n",
              static_cast<long>(k_check));
  return 0;
}
