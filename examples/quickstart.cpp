// Quickstart: fit a sparse quadratic response-surface model of an unknown
// function from far fewer samples than coefficients.
//
//   build/examples/quickstart
//
// A synthetic "circuit performance" over N = 50 process variables is secretly
// a sparse combination of 8 Hermite basis functions. The quadratic dictionary
// has M = 1 + 2N + N(N-1)/2 = 1326 candidate terms; we draw only K = 200
// simulation samples — least squares is impossible (K < M), but OMP with
// 4-fold cross-validation recovers the model.
#include <cmath>
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/synthetic.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

int main() {
  using namespace rsm;
  const Index n = 50;        // process variables (post-PCA, ~N(0,1))
  const Index k_train = 200; // "transistor-level simulations" we can afford
  const Index k_test = 2000; // independent validation set

  // 1. The basis dictionary: all Hermite polynomials up to total degree 2.
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  std::printf("dictionary: %ld candidate basis functions over %ld variables\n",
              static_cast<long>(dict->size()), static_cast<long>(n));

  // 2. The "circuit": a hidden 8-sparse function plus simulation noise.
  Rng rng(2024);
  SyntheticOptions truth_opt;
  truth_opt.num_active = 8;
  truth_opt.noise_stddev = 0.01;
  const SyntheticSparseFunction circuit(dict, truth_opt, rng);

  // 3. Monte Carlo sampling (the paper samples pdf(dY) directly).
  const Matrix train = monte_carlo_normal(k_train, n, rng);
  const Matrix test = monte_carlo_normal(k_test, n, rng);
  const std::vector<Real> f_train = circuit.observe(train, rng);
  const std::vector<Real> f_test = circuit.observe(test, rng);
  std::printf("samples: %ld training (K << M!), %ld testing\n",
              static_cast<long>(k_train), static_cast<long>(k_test));

  // 4. Fit with OMP; cross-validation picks the sparsity level lambda.
  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 30;
  const BuildReport report = build_model(dict, train, f_train, opt);

  std::printf("\nOMP selected lambda = %ld terms (CV error %.2f%%)\n",
              static_cast<long>(report.lambda), 100.0 * report.cv.best_error);
  std::printf("%s\n", report.model.to_string(10).c_str());

  // 5. Validate on the independent testing set.
  const Real err = validate_model(report.model, test, f_test);
  std::printf("testing-set error: %.2f%% of the performance variability\n",
              100.0 * err);
  std::printf("analytic model mean = %.4f, stddev = %.4f\n",
              report.model.analytic_mean(),
              std::sqrt(report.model.analytic_variance()));

  // 6. Compare with the hidden truth.
  std::printf("\nhidden truth had %ld active terms:\n%s",
              static_cast<long>(circuit.truth().num_terms()),
              circuit.truth().to_string(10).c_str());
  return 0;
}
