// Model server: fitted models behind a local socket, fit offline /
// serve online.
//
//   build/examples/model_server --socket /tmp/rsm.sock
//       --registry /tmp/rsm_models --fit-demo
//   # then from another terminal:
//   python3 scripts/serve_client.py --socket /tmp/rsm.sock list_models
//   python3 scripts/serve_client.py --socket /tmp/rsm.sock yield
//       --model sram_delay --upper 3.0 --num-samples 100000
//
// The binary opens a ModelRegistry, optionally fits a demo SRAM read-delay
// model into it (--fit-demo, skipped when the name already exists), binds
// the AF_UNIX serving socket, and serves eval / eval_batch / yield /
// worst_case / list_models until SIGINT/SIGTERM. The first signal triggers
// the cooperative drain (answer every fully received frame, flush, close —
// no in-flight response is lost) and the binary exits 128+signo; a second
// signal exits immediately. This is the binary CI's serve-smoke job drives,
// including its malformed-frame and drain-under-TSan cases.
#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "basis/dictionary.hpp"
#include "core/pipeline.hpp"
#include "obs/env.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"
#include "serve/model_codec.hpp"
#include "serve/server.hpp"
#include "sram/sram.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"
#include "util/signals.hpp"

namespace {

/// Fits the demo SRAM read-delay model and stores it as version 1. The
/// geometry is intentionally small — the demo exists so a fresh checkout
/// can exercise the serving path in seconds; bench/model_serve.cpp fits the
/// Table-IV-scale model for throughput numbers.
void fit_demo_model(rsm::serve::ModelRegistry& registry,
                    const std::string& name, rsm::Index rows, rsm::Index cols,
                    rsm::Index num_samples) {
  using namespace rsm;
  sram::SramConfig config;
  config.rows = rows;
  config.cols = cols;
  const sram::SramWorkload sram(config);
  const Index n = sram.num_variables();

  Rng rng(44);
  const Matrix inputs = monte_carlo_normal(num_samples, n, rng);
  std::vector<Real> delays;
  delays.reserve(static_cast<std::size_t>(num_samples));
  for (Index k = 0; k < num_samples; ++k)
    delays.push_back(sram.evaluate(inputs.row(k)));

  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  BuildOptions options;
  options.max_lambda = 40;
  const BuildReport report = build_model(dict, inputs, delays, options);
  const std::uint32_t version = registry.save(name, report.model);
  std::printf("fitted demo model '%s' v%u: %ld variables, lambda=%ld, "
              "training error %.2f%%, fingerprint %016llx\n",
              name.c_str(), version, static_cast<long>(n),
              static_cast<long>(report.lambda),
              100.0 * report.training_error,
              static_cast<unsigned long long>(
                  serve::dictionary_fingerprint(report.model.dictionary())));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsm;

  CliArgs args;
  args.add_option("socket", "model_server.sock",
                  "AF_UNIX socket path to serve on");
  args.add_option("registry", "model_registry",
                  "model registry directory (created if missing)");
  args.add_option("threads", "0",
                  "batched-evaluation worker threads; 0 consults RSM_THREADS "
                  "and defaults to the hardware concurrency");
  args.add_option("batch-chunk", "2048",
                  "rows per thread-pool task when splitting eval_batch "
                  "requests");
  args.add_flag("fit-demo",
                "fit a small SRAM read-delay demo model into the registry "
                "at startup when --demo-name is absent from it");
  args.add_option("demo-name", "sram_delay", "registry name of the demo model");
  args.add_option("demo-rows", "8", "demo SRAM array rows");
  args.add_option("demo-cols", "8", "demo SRAM array columns");
  args.add_option("demo-samples", "300", "demo training samples");
  args.add_option("max-inflight", "256",
                  "frames admitted per poll cycle across all connections "
                  "before shedding with kOverloaded (0 = unlimited)");
  args.add_option("max-pending", "64",
                  "frames admitted per poll cycle per connection before "
                  "shedding (0 = unlimited)");
  args.add_option("retry-after-ms", "50",
                  "backoff hint carried in kOverloaded error frames");
  args.add_option("read-timeout", "30",
                  "seconds a partial frame may sit unfinished before the "
                  "connection is closed (0 = off)");
  args.add_option("write-timeout", "30",
                  "seconds a peer may refuse to drain responses before the "
                  "connection is closed (0 = off)");
  args.add_option("idle-timeout", "0",
                  "seconds of silence before an idle connection is reaped "
                  "(0 = off)");
  args.add_option("reload-probe", "0",
                  "seconds between registry change probes that trigger a "
                  "hot model reload (0 = reload only on request)");
  args.add_option("report", "",
                  "write a BENCH-schema JSON report of serving stats here "
                  "on shutdown");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 args.usage("model_server").c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage("model_server").c_str());
    return 0;
  }
  obs::apply_env_overrides();

  // First signal: cooperative drain (finish buffered requests, flush,
  // close), exit 128+signo. Second signal: immediate exit.
  CancellationSource cancel_source;
  install_signal_cancellation(&cancel_source);

  serve::ServerOptions options;
  options.socket_path = args.get("socket");
  options.registry_root = args.get("registry");
  options.num_threads = static_cast<int>(args.get_int("threads"));
  options.batch_chunk = static_cast<Index>(args.get_int("batch-chunk"));
  options.cancel = cancel_source.token();
  options.max_inflight_requests = static_cast<int>(args.get_int("max-inflight"));
  options.max_pending_per_connection =
      static_cast<int>(args.get_int("max-pending"));
  options.retry_after_ms =
      static_cast<std::uint32_t>(args.get_int("retry-after-ms"));
  options.read_timeout_seconds = args.get_double("read-timeout");
  options.write_timeout_seconds = args.get_double("write-timeout");
  options.idle_timeout_seconds = args.get_double("idle-timeout");
  options.reload_probe_seconds = args.get_double("reload-probe");

  try {
    serve::ModelRegistry registry(options.registry_root);
    const std::string demo_name = args.get("demo-name");
    if (args.get_flag("fit-demo") && registry.latest_version(demo_name) == 0)
      fit_demo_model(registry, demo_name,
                     static_cast<Index>(args.get_int("demo-rows")),
                     static_cast<Index>(args.get_int("demo-cols")),
                     static_cast<Index>(args.get_int("demo-samples")));

    serve::ModelServer server(std::move(options));
    for (const serve::ModelRecord& record : server.registry().list())
      std::printf("model %s v%u: %ld variables, %ld terms, %llu bytes\n",
                  record.name.c_str(), record.version,
                  static_cast<long>(record.num_variables),
                  static_cast<long>(record.num_terms),
                  static_cast<unsigned long long>(record.size_bytes));
    std::printf("listening on %s\n", args.get("socket").c_str());
    std::fflush(stdout);

    server.run();

    const serve::ServerStats& stats = server.stats();
    std::printf("drained: %llu connections, %llu requests (%llu admitted, "
                "%llu shed; %llu evals, %llu batch rows), %llu protocol "
                "errors, %llu request errors, %llu timed out, %llu idle "
                "closed, %llu reloads (%llu failed)\n",
                static_cast<unsigned long long>(stats.connections_accepted),
                static_cast<unsigned long long>(stats.requests_served),
                static_cast<unsigned long long>(stats.requests_admitted),
                static_cast<unsigned long long>(stats.requests_shed),
                static_cast<unsigned long long>(stats.evals),
                static_cast<unsigned long long>(stats.batch_rows),
                static_cast<unsigned long long>(stats.protocol_errors),
                static_cast<unsigned long long>(stats.request_errors),
                static_cast<unsigned long long>(stats.connections_timed_out),
                static_cast<unsigned long long>(stats.idle_closed),
                static_cast<unsigned long long>(stats.reloads),
                static_cast<unsigned long long>(stats.reload_failures));

    const std::string report_path = args.get("report");
    if (!report_path.empty()) {
      obs::JsonValue results = obs::JsonValue::object();
      results.set("connections",
                  static_cast<std::int64_t>(stats.connections_accepted));
      results.set("requests",
                  static_cast<std::int64_t>(stats.requests_served));
      results.set("evals", static_cast<std::int64_t>(stats.evals));
      results.set("batch_rows", static_cast<std::int64_t>(stats.batch_rows));
      results.set("protocol_errors",
                  static_cast<std::int64_t>(stats.protocol_errors));
      results.set("request_errors",
                  static_cast<std::int64_t>(stats.request_errors));
      results.set("accepted",
                  static_cast<std::int64_t>(stats.requests_admitted));
      results.set("shed", static_cast<std::int64_t>(stats.requests_shed));
      results.set("timed_out",
                  static_cast<std::int64_t>(stats.connections_timed_out));
      results.set("idle_closed",
                  static_cast<std::int64_t>(stats.idle_closed));
      results.set("reloads", static_cast<std::int64_t>(stats.reloads));
      results.set("reload_failures",
                  static_cast<std::int64_t>(stats.reload_failures));
      results.set("signal_cancelled", signal_cancellation_requested());
      obs::write_report(report_path, "model_server", std::move(results));
      std::printf("report written to %s\n", report_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "model_server failed: %s\n", e.what());
    return 1;
  }

  obs::export_trace_if_configured("model_server");
  return signal_exit_status();
}
