// High-sigma SRAM read-failure analysis — the follow-on application this
// modeling line of work (and the SRAM example in the paper) feeds into.
//
//   build/examples/high_sigma_sram [--rows 32] [--cols 32]
//
// A read fails when the sense-amp input margin goes negative. Failure
// probabilities are engineered to 5-6 sigma per cell — far beyond what
// Monte Carlo on ANY simulator can see (10^9+ samples). The flow here:
//
//   1. simulate a few hundred samples of the margin;
//   2. fit a sparse linear model (OMP + CV) — K << M as usual;
//   3. mean-shift importance sampling ON THE MODEL estimates the
//      failure tail at negligible cost, with the analytic Gaussian tail of
//      the linear model as a cross-check.
#include <cmath>
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/sobol.hpp"
#include "core/yield.hpp"
#include "sram/sram.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rsm;
  CliArgs args;
  args.add_option("rows", "32", "SRAM rows");
  args.add_option("cols", "32", "SRAM columns");
  args.add_option("train", "400", "training samples");
  args.add_option("is-samples", "50000", "importance-sampling draws");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("high_sigma_sram").c_str());
    return 0;
  }

  sram::SramConfig cfg;
  cfg.rows = args.get_int("rows");
  cfg.cols = args.get_int("cols");
  const sram::SramWorkload sram(cfg);
  const Index n = sram.num_variables();

  Rng rng(2024);
  const Index k_train = args.get_int("train");
  const Matrix train = monte_carlo_normal(k_train, n, rng);
  std::vector<Real> margins(static_cast<std::size_t>(k_train));
  for (Index k = 0; k < k_train; ++k)
    margins[static_cast<std::size_t>(k)] =
        sram.evaluate_metrics(train.row(k)).margin;

  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  BuildOptions opt;
  opt.max_lambda = 50;
  const BuildReport report = build_model(dict, train, margins, opt);

  const Real mu = report.model.analytic_mean();
  const Real sigma = std::sqrt(report.model.analytic_variance());
  std::printf("margin model: %ld of %ld terms; mean %.1f mV, sigma %.2f mV "
              "-> nominal margin is %.1f sigma from failure\n\n",
              static_cast<long>(report.lambda), static_cast<long>(dict->size()),
              1e3 * mu, 1e3 * sigma, mu / sigma);

  // Who eats the margin? (exact Sobol attribution from the sparse model)
  const sram::SramVariableMap& vm = sram.variable_map();
  const SobolIndices sens = sobol_indices(report.model);
  std::printf("margin variance attribution (top sources):\n");
  int shown = 0;
  for (Index v : rank_variables_by_sensitivity(report.model)) {
    const char* kind = "array cell";
    if (v == vm.cell(0, 0)) kind = "ACCESSED CELL";
    else if (v < vm.num_globals) kind = "global";
    else if (v >= vm.sense(0) && v < vm.sense(0) + vm.num_sense_vars)
      kind = "sense amp";
    else if (v >= vm.replica(0, 0) && v < vm.sense(0)) kind = "replica";
    std::printf("  y%-6ld %-14s %5.1f%%\n", static_cast<long>(v), kind,
                100 * sens.total_effect[static_cast<std::size_t>(v)]);
    if (++shown == 6) break;
  }

  // Failure probability P(margin < 0) at several derated thresholds.
  std::printf("\nread-failure probability (importance sampling on the model"
              " vs analytic Gaussian tail):\n");
  Table table({"threshold", "sigma distance", "IS estimate", "rel. stderr",
               "analytic"});
  for (Real frac : {0.5, 0.25, 0.0}) {
    const Real threshold = frac * mu;  // derated margin requirements
    Rng is_rng(7);
    const TailProbability tail = estimate_tail_probability(
        report.model, threshold, /*upper_tail=*/false,
        args.get_int("is-samples"), is_rng);
    Specification fail_spec;
    fail_spec.upper = threshold;
    const Real analytic = analytic_linear_yield(report.model, fail_spec);
    table.add_row({format_sig(threshold * 1e3, 3) + " mV",
                   format_sig((mu - threshold) / sigma, 3),
                   format_sig(tail.probability, 3),
                   tail.probability > 0
                       ? format_pct(tail.standard_error / tail.probability)
                       : "-",
                   format_sig(analytic, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nplain Monte Carlo would need ~100/p simulator runs per row"
              " (10^7+ at the\n bottom row); the model + importance sampling"
              " needs %ld simulator runs total.\n",
              static_cast<long>(k_train));
  return 0;
}
