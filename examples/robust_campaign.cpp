// Fault-tolerant simulation campaign: retry, escalation, quarantine, and
// the fit gate, demonstrated end-to-end on a real circuit bench.
//
//   build/examples/robust_campaign
//
// A small OpAmp Monte Carlo campaign is run twice: once clean, once with a
// deterministic 8% injected fault rate (singular solves + Newton stalls,
// half persistent). Transient faults recover on a retry with escalated DC
// solver options; persistent ones are quarantined with their error code.
// Both survivor sets are then fitted with OMP and validated against each
// other — losing a few samples to quarantine barely moves the model.
#include <cstdio>
#include <span>

#include "basis/dictionary.hpp"
#include "circuits/opamp.hpp"
#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "spice/dc.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/signals.hpp"

int main() {
  using namespace rsm;

  // Ctrl-C / SIGTERM drains the in-flight campaign at its next check site
  // and the binary exits 128+signo; a second signal exits immediately.
  CancellationSource cancel_source;
  install_signal_cancellation(&cancel_source);

  // A reduced-variable OpAmp bench keeps this example fast: 38 variables
  // covers the global + per-device mismatch factors (no parasitic tail).
  circuits::OpAmpConfig config;
  config.num_variables = 38;
  const circuits::OpAmpWorkload workload(config);
  const Index n = workload.num_variables();
  const Index k = 120;

  Rng rng(7);
  const Matrix samples = monte_carlo_normal(k, n, rng);

  // The evaluator maps the campaign's escalation level to hardened DC
  // options: deeper gmin/source/pseudo-transient ladders, more iterations.
  // The modeled metric is the input-referred offset — the paper's classic
  // sparse-linear performance (driven by a handful of mismatch factors).
  const spice::DcOptions base_dc;
  const SampleEvaluator evaluate = [&](std::span<const Real> dy,
                                       int escalation) {
    const spice::DcOptions dc = spice::escalated(base_dc, escalation);
    return static_cast<Real>(workload.evaluate(dy, dc).offset_v);
  };

  // Clean reference campaign.
  CampaignOptions clean_opt;
  clean_opt.cancel = cancel_source.token();
  const CampaignResult clean = run_campaign(samples, evaluate, clean_opt);
  std::printf("clean run:\n%s\n\n", clean.report.summary().c_str());

  // Faulted campaign: deterministic injector plants singular solves and
  // Newton stalls at hash-chosen sample indices.
  CampaignOptions opt;
  opt.cancel = cancel_source.token();
  opt.max_attempts = 3;
  opt.min_success_fraction = 0.8;
  opt.fault_injector = FaultInjector(
      {.fault_rate = 0.08, .persistent_fraction = 0.5, .seed = 1234});
  const CampaignResult faulted = run_campaign(samples, evaluate, opt);
  std::printf("faulted run:\n%s\n\n", faulted.report.summary().c_str());

  if (clean.report.truncated || faulted.report.truncated) {
    std::printf("campaign interrupted; partial results above\n");
    return signal_exit_status();
  }

  // Fit both survivor sets (the gate throws if too much was quarantined).
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  BuildOptions build;
  build.max_lambda = 25;
  const BuildReport clean_fit = fit_campaign(clean, dict, build);
  const BuildReport faulted_fit = fit_campaign(faulted, dict, build);

  std::printf("clean fit:   lambda = %ld, CV error %.2f%%\n",
              static_cast<long>(clean_fit.lambda),
              100.0 * clean_fit.cv.best_error);
  std::printf("faulted fit: lambda = %ld, CV error %.2f%% "
              "(%ld/%ld samples survived)\n",
              static_cast<long>(faulted_fit.lambda),
              100.0 * faulted_fit.cv.best_error,
              static_cast<long>(faulted.samples.rows()),
              static_cast<long>(k));

  // Cross-validate the faulted model on the clean campaign's data.
  const Real cross_err =
      validate_model(faulted_fit.model, clean.samples, clean.values);
  std::printf("faulted model scored on clean data: %.2f%% error\n",
              100.0 * cross_err);
  return signal_exit_status();
}
