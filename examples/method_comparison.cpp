// Side-by-side comparison of the paper's four modeling techniques —
// LS [21], STAR [1], LAR [2] and OMP — on one shared problem.
//
//   build/examples/method_comparison [--variables N] [--sparsity P]
//
// Prints the cross-validation error curve eps(lambda) for each sparse method
// (the Section IV-C picture) and a summary table: with K just above M the LS
// baseline is feasible but noisy, while the sparse methods use a fraction of
// the samples.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/cross_validation.hpp"
#include "core/pipeline.hpp"
#include "core/synthetic.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rsm;
  CliArgs args;
  args.add_option("variables", "25", "process variables");
  args.add_option("sparsity", "10", "active terms in the hidden truth");
  args.add_option("noise", "0.05", "observation noise stddev");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("method_comparison").c_str());
    return 0;
  }

  const Index n = args.get_int("variables");
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(n));
  const Index m = dict->size();

  Rng rng(99);
  SyntheticOptions sopt;
  sopt.num_active = args.get_int("sparsity");
  sopt.noise_stddev = args.get_double("noise");
  const SyntheticSparseFunction fn(dict, sopt, rng);

  const Index k_sparse = 4 * sopt.num_active * 4;  // K = O(P log M) regime
  const Index k_ls = 2 * m;                        // LS needs K >= M
  const Matrix train_sparse = monte_carlo_normal(k_sparse, n, rng);
  const Matrix train_ls = monte_carlo_normal(k_ls, n, rng);
  const Matrix test = monte_carlo_normal(2000, n, rng);
  const std::vector<Real> f_sparse = fn.observe(train_sparse, rng);
  const std::vector<Real> f_ls = fn.observe(train_ls, rng);
  const std::vector<Real> f_test = fn.observe(test, rng);

  std::printf("dictionary: M = %ld terms; hidden truth: P = %ld active\n",
              static_cast<long>(m), static_cast<long>(sopt.num_active));
  std::printf("sparse methods: K = %ld samples; LS baseline: K = %ld\n\n",
              static_cast<long>(k_sparse), static_cast<long>(k_ls));

  Table table({"method", "K", "lambda", "test error"});

  // LS baseline at full sampling.
  {
    BuildOptions opt;
    opt.method = Method::kLeastSquares;
    const BuildReport rpt = build_model(dict, train_ls, f_ls, opt);
    table.add_row({"LS [21]", std::to_string(k_ls), "-",
                   format_pct(validate_model(rpt.model, test, f_test))});
  }

  // Sparse methods share the small training set; print CV curves.
  for (Method method : {Method::kStar, Method::kLar, Method::kOmp}) {
    BuildOptions opt;
    opt.method = method;
    opt.max_lambda = 3 * args.get_int("sparsity");
    const BuildReport rpt = build_model(dict, train_sparse, f_sparse, opt);
    table.add_row({method_name(method), std::to_string(k_sparse),
                   std::to_string(rpt.lambda),
                   format_pct(validate_model(rpt.model, test, f_test))});

    std::printf("%s cross-validation curve eps(lambda):\n",
                method_name(method));
    const std::vector<Real>& curve = rpt.cv.error_curve;
    for (std::size_t t = 0; t < curve.size(); t += 2) {
      const int bars = static_cast<int>(60.0 * curve[t]);
      std::printf("  lambda=%-3zu %6.2f%% %s%s\n", t + 1, 100.0 * curve[t],
                  std::string(static_cast<std::size_t>(
                                  std::min(std::max(bars, 0), 70)),
                              '#')
                      .c_str(),
                  static_cast<Index>(t) + 1 == rpt.cv.best_lambda ? "  <-- min"
                                                                  : "");
    }
    std::printf("\n");
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nSTAR skips the least-squares re-fit (Algorithm 1 Step 6) and"
              "\npays for it in accuracy; LAR and OMP track each other, as the"
              "\npaper observes (Section V-A).\n");
  return 0;
}
