// Performance variability modeling of the two-stage OpAmp (paper Fig. 3).
//
//   build/examples/opamp_modeling [--variables N] [--train K] [--test K]
//
// Simulates the amplifier (nonlinear DC + AC analyses on the built-in MNA
// engine) at random process-variation samples, then fits sparse linear models
// of all four performance metrics with OMP and prints per-metric accuracy and
// the dominant variation sources.
#include <cstdio>

#include "circuits/opamp.hpp"
#include "core/pipeline.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace rsm;
  CliArgs args;
  args.add_option("variables", "630", "number of variation variables (>= 38)");
  args.add_option("train", "300", "training samples");
  args.add_option("test", "500", "testing samples");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("opamp_modeling").c_str());
    return 0;
  }

  circuits::OpAmpConfig cfg;
  cfg.num_variables = args.get_int("variables");
  const circuits::OpAmpWorkload opamp(cfg);
  const Index n = opamp.num_variables();
  const Index k_train = args.get_int("train");
  const Index k_test = args.get_int("test");

  std::printf("two-stage OpAmp: %ld variation variables\n",
              static_cast<long>(n));
  std::printf("nominal: gain %.1f dB, bandwidth %.3g Hz, power %.1f uW, "
              "offset %.1f uV\n\n",
              opamp.nominal().gain_db, opamp.nominal().bandwidth_hz,
              opamp.nominal().power_w * 1e6, opamp.nominal().offset_v * 1e6);

  // Simulate training + testing sets (the expensive part in real life).
  Rng rng(7);
  const Matrix train = monte_carlo_normal(k_train, n, rng);
  const Matrix test = monte_carlo_normal(k_test, n, rng);
  WallTimer sim_timer;
  std::vector<circuits::OpAmpMetrics> train_metrics, test_metrics;
  train_metrics.reserve(static_cast<std::size_t>(k_train));
  for (Index k = 0; k < k_train; ++k)
    train_metrics.push_back(opamp.evaluate(train.row(k)));
  test_metrics.reserve(static_cast<std::size_t>(k_test));
  for (Index k = 0; k < k_test; ++k)
    test_metrics.push_back(opamp.evaluate(test.row(k)));
  std::printf("simulated %ld samples in %.2f s\n\n",
              static_cast<long>(k_train + k_test), sim_timer.seconds());

  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  Table table({"metric", "lambda", "CV error", "test error", "fit time"});

  for (circuits::OpAmpMetric metric : circuits::kAllOpAmpMetrics) {
    std::vector<Real> f_train(static_cast<std::size_t>(k_train));
    std::vector<Real> f_test(static_cast<std::size_t>(k_test));
    for (Index k = 0; k < k_train; ++k)
      f_train[static_cast<std::size_t>(k)] =
          train_metrics[static_cast<std::size_t>(k)].get(metric);
    for (Index k = 0; k < k_test; ++k)
      f_test[static_cast<std::size_t>(k)] =
          test_metrics[static_cast<std::size_t>(k)].get(metric);

    BuildOptions opt;
    opt.method = Method::kOmp;
    opt.max_lambda = 40;
    const BuildReport report = build_model(dict, train, f_train, opt);
    const Real err = validate_model(report.model, test, f_test);

    table.add_row({circuits::opamp_metric_name(metric),
                   std::to_string(report.lambda),
                   format_pct(report.cv.best_error), format_pct(err),
                   format_seconds(report.fit_seconds)});

    std::printf("%s: dominant terms\n%s\n",
                circuits::opamp_metric_name(metric),
                report.model.to_string(5).c_str());
  }

  std::printf("%s", table.render().c_str());
  std::printf("\n(K = %ld samples for M = %ld candidate coefficients: an "
              "underdetermined fit\n that least-squares cannot attempt)\n",
              static_cast<long>(k_train), static_cast<long>(dict->size()));
  return 0;
}
