// SRAM read-delay modeling (paper Fig. 5/6): huge variable count, tiny
// active set.
//
//   build/examples/sram_delay [--rows R] [--cols C] [--train K]
//
// Defaults use a 64x64 array (4158 variables) so the example runs in
// seconds; pass --rows 128 --cols 166 for the paper's full 21 310 variables.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/pipeline.hpp"
#include "sram/sram.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rsm;
  CliArgs args;
  args.add_option("rows", "64", "SRAM rows");
  args.add_option("cols", "64", "SRAM columns");
  args.add_option("train", "500", "training samples");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("sram_delay").c_str());
    return 0;
  }

  sram::SramConfig cfg;
  cfg.rows = args.get_int("rows");
  cfg.cols = args.get_int("cols");
  const sram::SramWorkload sram(cfg);
  const Index n = sram.num_variables();
  const Index k_train = args.get_int("train");

  std::printf("SRAM read path: %ldx%ld array, %ld independent variables\n",
              static_cast<long>(cfg.rows), static_cast<long>(cfg.cols),
              static_cast<long>(n));
  std::printf("nominal read delay: %.1f ps\n\n", sram.nominal() * 1e12);

  Rng rng(17);
  const Matrix train = monte_carlo_normal(k_train, n, rng);
  const Matrix test = monte_carlo_normal(800, n, rng);
  std::vector<Real> f_train(static_cast<std::size_t>(k_train));
  for (Index k = 0; k < k_train; ++k)
    f_train[static_cast<std::size_t>(k)] = sram.evaluate(train.row(k));
  std::vector<Real> f_test(static_cast<std::size_t>(test.rows()));
  for (Index k = 0; k < test.rows(); ++k)
    f_test[static_cast<std::size_t>(k)] = sram.evaluate(test.row(k));

  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 60;
  const BuildReport report = build_model(dict, train, f_train, opt);

  std::printf("OMP model: %ld of %ld coefficients non-zero (%.3f%%)\n",
              static_cast<long>(report.lambda),
              static_cast<long>(dict->size()),
              100.0 * static_cast<double>(report.lambda) /
                  static_cast<double>(dict->size()));
  std::printf("testing error: %.2f%% of delay variability\n\n",
              100.0 * validate_model(report.model, test, f_test));

  // The Fig. 6 picture: sorted coefficient magnitudes fall off a cliff.
  std::vector<Real> mags;
  for (const ModelTerm& t : report.model.terms())
    if (!report.model.dictionary().index(t.basis_index).is_constant())
      mags.push_back(std::abs(t.coefficient));
  std::sort(mags.rbegin(), mags.rend());
  std::printf("sorted |coefficient| spectrum (log scale, ps):\n");
  for (std::size_t i = 0; i < mags.size(); ++i) {
    const int bars = std::max(
        1, static_cast<int>(8.0 * (std::log10(mags[i] * 1e12) + 3.0)));
    std::printf("  #%2zu %9.4f ps  %s\n", i + 1, mags[i] * 1e12,
                std::string(static_cast<std::size_t>(std::max(bars, 0)), '#')
                    .c_str());
    if (i == 19 && mags.size() > 22) {
      std::printf("  ... (%zu more)\n", mags.size() - 20);
      break;
    }
  }

  // Name the top variation sources using the variable map.
  const sram::SramVariableMap& vm = sram.variable_map();
  std::printf("\ntop variation sources:\n");
  std::vector<ModelTerm> sorted = report.model.terms();
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return std::abs(a.coefficient) > std::abs(b.coefficient);
  });
  int shown = 0;
  for (const ModelTerm& t : sorted) {
    const MultiIndex& mi = report.model.dictionary().index(t.basis_index);
    if (mi.is_constant()) continue;
    const Index v = mi.terms()[0].variable;
    const char* kind = "array cell";
    if (v == vm.cell(0, 0)) kind = "ACCESSED CELL";
    else if (v < vm.num_globals) kind = "global (inter-die)";
    else if (v < vm.num_globals + vm.num_driver_vars) kind = "WL driver";
    else if (v < vm.num_globals + vm.num_driver_vars + vm.num_replica_vars)
      kind = "replica path";
    else if (v < vm.num_globals + vm.num_driver_vars + vm.num_replica_vars +
                     vm.num_sense_vars)
      kind = "sense amp";
    else if (v < vm.num_globals + vm.num_driver_vars + vm.num_replica_vars +
                     vm.num_sense_vars + vm.num_misc_vars)
      kind = "column mux";
    std::printf("  y%-6ld %-18s %+.4f ps/sigma\n", static_cast<long>(v), kind,
                t.coefficient * 1e12);
    if (++shown == 12) break;
  }
  return 0;
}
