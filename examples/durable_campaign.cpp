// Durable campaign driver: crash-safe checkpoint/resume, graceful
// SIGINT/SIGTERM, cooperative deadlines, and a machine-readable report.
//
//   build/examples/durable_campaign --checkpoint /tmp/opamp.ckpt
//       --report /tmp/CAMPAIGN_report.json
//   # ... SIGKILL it mid-run, then:
//   build/examples/durable_campaign --checkpoint /tmp/opamp.ckpt
//       --report /tmp/CAMPAIGN_report.json --resume
//
// The binary runs an OpAmp Monte Carlo campaign with per-row durable
// checkpointing. Ctrl-C (or SIGTERM) requests cooperative cancellation: the
// campaign drains at its next check site, flushes the checkpoint and a
// partial report, and exits 128+signo; a second signal exits immediately.
// --resume replays the checkpoint (tolerating the torn trailing record a
// crash leaves) and continues from the first unevaluated row — the resumed
// run is bit-identical to an uninterrupted one. This is the binary CI's
// kill-and-resume smoke job drives.
#include <chrono>
#include <cstdio>
#include <exception>
#include <span>
#include <string>
#include <thread>

#include "basis/dictionary.hpp"
#include "circuits/opamp.hpp"
#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "io/atomic_file.hpp"
#include "obs/env.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"
#include "spice/dc.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"
#include "util/signals.hpp"

int main(int argc, char** argv) {
  using namespace rsm;

  CliArgs args;
  args.add_option("samples", "120", "campaign rows (Monte Carlo samples)");
  args.add_option("checkpoint", "durable_campaign.ckpt",
                  "checkpoint log path");
  args.add_flag("resume", "resume from the checkpoint instead of starting "
                          "fresh (falls back to fresh when the file does "
                          "not exist yet)");
  args.add_option("report", "", "write a BENCH-schema JSON report here");
  args.add_option("flush-every", "1", "checkpoint fsync cadence in records");
  args.add_option("sample-deadline", "0",
                  "per-attempt watchdog in seconds (0 = off)");
  args.add_option("budget-seconds", "0",
                  "global campaign time budget in seconds (0 = off)");
  args.add_option("fault-rate", "0.05",
                  "injected evaluator fault rate (0 disables)");
  args.add_option("fs-fault-rate", "0",
                  "injected filesystem fault rate under the checkpoint "
                  "writer (0 disables)");
  args.add_option("slow-ms", "0",
                  "artificial per-sample cost in milliseconds (lets the CI "
                  "smoke job kill the run mid-campaign deterministically)");
  args.add_option("threads", "0",
                  "campaign worker threads; 0 consults RSM_THREADS and "
                  "defaults to serial. A parallel run checkpoints into "
                  "per-worker shards that --resume merges, so the killed "
                  "run may be resumed with any thread count");
  args.add_option("progress", "",
                  "append live JSONL heartbeats (rows done, rows/sec, ETA, "
                  "worker utilization) to this path; tail -f it from "
                  "another terminal. Empty disables");
  args.add_option("progress-interval", "1",
                  "seconds between progress heartbeats");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 args.usage("durable_campaign").c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage("durable_campaign").c_str());
    return 0;
  }

  // Announce the ambient observability configuration so a log capture of
  // this run states how it was instrumented.
  std::printf("observability: RSM_OBS_LEVEL=%d RSM_TRACE_EXPORT=%s\n",
              obs::obs_level(),
              obs::trace_export_path().empty()
                  ? "(unset)"
                  : obs::trace_export_path().c_str());

  // First signal: cooperative cancellation -> drain, flush, partial report,
  // exit 128+signo. Second signal: immediate exit.
  CancellationSource cancel_source;
  install_signal_cancellation(&cancel_source);

  circuits::OpAmpConfig config;
  config.num_variables = 38;
  const circuits::OpAmpWorkload workload(config);
  const Index n = workload.num_variables();
  const Index k = static_cast<Index>(args.get_int("samples"));

  Rng rng(7);
  const Matrix samples = monte_carlo_normal(k, n, rng);

  const long slow_ms = args.get_int("slow-ms");
  const spice::DcOptions base_dc;
  const SampleEvaluator evaluate = [&](std::span<const Real> dy,
                                       int escalation) {
    if (slow_ms > 0) {
      // Cooperative stall: sleep in short chunks (not a spin) so parallel
      // workers overlap their waits on any core count, while honoring
      // cancellation and deadlines at the same cadence the instrumented
      // solvers do.
      const Deadline nap = Deadline::after_seconds(
          static_cast<double>(slow_ms) / 1000.0);
      while (!nap.expired()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        check_cooperative_stop("example.slow");
      }
    }
    const spice::DcOptions dc = spice::escalated(base_dc, escalation);
    return static_cast<Real>(workload.evaluate(dy, dc).offset_v);
  };

  CampaignOptions options;
  options.max_attempts = 3;
  options.min_success_fraction = 0.8;
  options.cancel = cancel_source.token();
  options.sample_deadline_seconds = args.get_double("sample-deadline");
  options.time_budget_seconds = args.get_double("budget-seconds");
  options.checkpoint.path = args.get("checkpoint");
  options.checkpoint.flush_every =
      static_cast<int>(args.get_int("flush-every"));
  options.num_workers = static_cast<int>(args.get_int("threads"));
  options.progress_path = args.get("progress");
  options.progress_interval_seconds = args.get_double("progress-interval");
  const double fault_rate = args.get_double("fault-rate");
  if (fault_rate > 0) {
    options.fault_injector = FaultInjector(
        {.fault_rate = fault_rate, .persistent_fraction = 0.5, .seed = 1234});
  }
  const double fs_fault_rate = args.get_double("fs-fault-rate");
  if (fs_fault_rate > 0) {
    options.checkpoint.fs_faults =
        FsFaultInjector({.fault_rate = fs_fault_rate, .seed = 99});
  }

  CampaignResult result;
  try {
    if (args.get_flag("resume") && io::file_exists(options.checkpoint.path)) {
      std::printf("resuming from checkpoint '%s'\n",
                  options.checkpoint.path.c_str());
      result = resume_campaign(samples, evaluate, options);
    } else {
      result = run_campaign(samples, evaluate, options);
    }
  } catch (const std::exception& e) {
    // A corrupt or mismatched checkpoint is a loud, structured failure —
    // never silently recomputed over.
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }
  std::printf("%s\n", result.report.summary().c_str());

  // Fit only complete, healthy runs; a truncated prefix is durable and a
  // later --resume finishes it.
  if (!result.report.truncated && result.report.fit_allowed()) {
    auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
    BuildOptions build;
    build.max_lambda = 25;
    const BuildReport fit = fit_campaign(result, dict, build);
    std::printf("fit: lambda = %ld, CV error %.2f%% (%ld/%ld survivors)\n",
                static_cast<long>(fit.lambda), 100.0 * fit.cv.best_error,
                static_cast<long>(result.samples.rows()),
                static_cast<long>(k));
  } else if (result.report.truncated) {
    std::printf("run truncated; skipping fit (resume with --resume)\n");
  }

  const std::string report_path = args.get("report");
  if (!report_path.empty()) {
    obs::JsonValue results = obs::JsonValue::object();
    results.set("campaign", result.report.to_json());
    results.set("signal_cancelled", signal_cancellation_requested());
    obs::write_report(report_path, "durable_campaign", std::move(results));
    std::printf("report written to %s\n", report_path.c_str());
  }

  // RSM_TRACE_EXPORT=<path>: dump the run's span trees as a Chrome-trace
  // profile on the way out.
  obs::export_trace_if_configured("durable_campaign");

  // Signal-cancelled runs exit nonzero (128+signo) so supervisors can tell
  // a drained interruption from a completed campaign.
  return signal_exit_status();
}
