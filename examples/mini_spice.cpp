// mini_spice — a small command-line circuit simulator on the built-in MNA
// engine, driven by SPICE-format netlists.
//
//   build/examples/mini_spice --netlist amp.sp --ac out --sweep 1,1e9
//   build/examples/mini_spice --demo                      # built-in demo
//
// Demonstrates the substrate the paper-reproduction workloads run on:
// parser -> nonlinear DC -> AC sweep / -3 dB extraction -> transient step
// response. Output is plain text tables (plus optional CSV of the AC sweep).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/parser.hpp"
#include "spice/transient.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

constexpr const char* kDemoNetlist = R"(* two-stage amplifier demo
.model nch NMOS (VT0=0.4 KP=200u LAMBDA=0.1)
.model pch PMOS (VT0=0.45 KP=80u LAMBDA=0.15)
Vdd vdd 0 1.2
Vin in 0 DC 0.55 AC 1
* common-source first stage, PMOS diode load (x sits ~0.45 V)
M1 x in 0 0 nch W=1.6u L=240n
M2 x x vdd vdd pch W=1u L=240n
* common-source PMOS second stage into a resistive load
M3 out x vdd vdd pch W=8u L=240n
Rl out 0 5k
Cl out 0 1p
.end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace rsm;
  using namespace rsm::spice;
  CliArgs args;
  args.add_option("netlist", "", "path to a SPICE netlist (empty: use --demo)");
  args.add_flag("demo", "run the built-in two-stage amplifier demo");
  args.add_option("ac", "out", "node for AC magnitude sweep");
  args.add_option("sweep", "1,1e9", "AC sweep range f_lo,f_hi [Hz]");
  args.add_option("csv", "", "write the AC sweep to this CSV file");
  args.add_option("tran", "0", "transient stop time [s] (0 = skip)");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("mini_spice").c_str());
    return 0;
  }

  std::string text;
  if (!args.get("netlist").empty()) {
    std::ifstream in(args.get("netlist"));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.get("netlist").c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    text = kDemoNetlist;
    std::printf("(no --netlist given; simulating the built-in demo)\n\n%s\n",
                kDemoNetlist);
  }

  Netlist netlist = parse_netlist(text);
  std::printf("parsed: %ld nodes, %zu R, %zu C, %zu V, %zu I, %zu MOS\n\n",
              static_cast<long>(netlist.num_nodes() - 1),
              netlist.resistors().size(), netlist.capacitors().size(),
              netlist.vsources().size(), netlist.isources().size(),
              netlist.mosfets().size());

  // --- DC operating point.
  const DcSolution op = solve_dc(netlist);
  Table dc_table({"node", "V"});
  for (NodeId node = 1; node < netlist.num_nodes(); ++node)
    dc_table.add_row({netlist.node_name(node), format_sig(op.voltage(node), 5)});
  std::printf("DC operating point (%d Newton iterations):\n%s\n",
              op.iterations, dc_table.render().c_str());

  // --- AC sweep of the requested node.
  const NodeId probe = netlist.node(args.get("ac"));
  Real f_lo = 1, f_hi = 1e9;
  if (std::sscanf(args.get("sweep").c_str(), "%lf,%lf", &f_lo, &f_hi) != 2 ||
      f_lo <= 0 || f_hi <= f_lo) {
    std::fprintf(stderr, "bad --sweep (want f_lo,f_hi)\n");
    return 1;
  }
  const std::vector<AcSweepPoint> sweep =
      ac_sweep(netlist, op, probe, f_lo, f_hi, 4);
  std::printf("AC |V(%s)| (%zu points):\n", args.get("ac").c_str(),
              sweep.size());
  for (std::size_t i = 0; i < sweep.size(); i += 4) {
    const Real db = 20 * std::log10(std::max(std::abs(sweep[i].value), 1e-30));
    const int bars = std::max(0, static_cast<int>(db) + 20);
    std::printf("  %9.3g Hz %8.2f dB %s\n", sweep[i].hz, db,
                std::string(static_cast<std::size_t>(std::min(bars, 70)), '#')
                    .c_str());
  }
  const Real bw = find_3db_bandwidth(netlist, op, probe, f_lo, f_hi);
  const Real dc_gain = std::abs(solve_ac(netlist, op, f_lo)[0 + probe - 1]);
  std::printf("low-frequency gain %.2f dB; -3 dB bandwidth %.4g Hz\n\n",
              20 * std::log10(std::max(dc_gain, 1e-30)), bw);

  if (!args.get("csv").empty()) {
    CsvWriter csv(args.get("csv"), {"hz", "magnitude", "phase_rad"});
    for (const AcSweepPoint& p : sweep)
      csv.write_row({p.hz, std::abs(p.value), std::arg(p.value)});
    std::printf("wrote AC sweep to %s\n", args.get("csv").c_str());
  }

  // --- Optional transient: 1%-of-stop-time step on the first AC source.
  const Real t_stop = args.get_double("tran");
  if (t_stop > 0) {
    Index src = -1;
    for (Index i = 0; i < static_cast<Index>(netlist.vsources().size()); ++i)
      if (netlist.vsources()[static_cast<std::size_t>(i)].ac != 0) src = i;
    if (src < 0) {
      std::printf("(no AC-tagged source to step; skipping transient)\n");
      return 0;
    }
    const Real v0 = netlist.vsources()[static_cast<std::size_t>(src)].dc;
    TransientOptions topt;
    topt.stop_time = t_stop;
    topt.timestep = t_stop / 2000;
    const auto wave = step_waveform(v0, v0 + 0.01, t_stop / 10, t_stop / 200);
    topt.update_sources = [&](Real t, Netlist& nl) {
      nl.vsource({src}).dc = wave(t);
    };
    const TransientResult tr = run_transient(netlist, topt);
    std::printf("transient: 10 mV input step at t=%.3g s, V(%s):\n",
                t_stop / 10, args.get("ac").c_str());
    for (std::size_t s = 0; s < tr.time.size(); s += tr.time.size() / 25)
      std::printf("  t=%9.3g s  V=%9.5f\n", tr.time[s], tr.voltage(s, probe));
  }
  return 0;
}
