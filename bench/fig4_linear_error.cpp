// Fig. 4 reproduction: linear modeling error vs number of training samples
// for the two-stage OpAmp, four methods x four metrics.
//
//   build/bench/fig4_linear_error [--variables 630] [--test 1000]
//                                 [--csv fig4.csv]
//
// The paper's shape to reproduce (Fig. 4a-d):
//   * error decreases with K for every method;
//   * STAR/LAR/OMP reach a given accuracy with far fewer samples than LS
//     (LS is only feasible at K >= M at all);
//   * OMP <= LAR < STAR at equal K, with up to 1.5-5x error gap to STAR.
#include <cstdio>
#include <string>

#include "common.hpp"
#include "stats/lhs.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace rsm;
  using namespace rsm::bench;
  CliArgs args;
  args.add_option("variables", "630", "OpAmp variation variables");
  args.add_option("test", "1000", "testing samples");
  args.add_option("max-lambda", "60", "path length for sparse methods");
  args.add_option("csv", "fig4.csv", "CSV output path (empty to disable)");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("fig4_linear_error").c_str());
    return 0;
  }

  const Index n = args.get_int("variables");
  circuits::OpAmpConfig opamp_cfg;
  opamp_cfg.num_variables = n;
  const circuits::OpAmpWorkload opamp(opamp_cfg);
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  const Index m = dict->size();
  // Sorted sample sweep ending above M so the LS baseline gets two points.
  std::vector<Index> sweep{100, 200, 400, 700};
  const Index k_ls_lo = (m + 99) / 100 * 100 + 100;
  const Index k_ls_hi = k_ls_lo + 300;
  for (Index k : {k_ls_lo, k_ls_hi}) {
    if (k > sweep.back()) sweep.push_back(k);
  }

  print_header("Fig. 4 — linear modeling error vs training samples (OpAmp)",
               "M = " + std::to_string(m) + " coefficients; LS runs only "
               "where K >= M");

  BenchReport bench_report("fig4_linear_error");
  bench_report.results().set("coefficients", static_cast<std::int64_t>(m));

  Rng rng(4);
  WallTimer sim_timer;
  const OpAmpSamples test = simulate_opamp(opamp, args.get_int("test"), rng);
  const OpAmpSamples pool =
      simulate_opamp(opamp, sweep.back(), rng);  // largest K, reused prefixes
  std::printf("simulated %ld samples in %.1f s (paper: %s of Spectre)\n",
              static_cast<long>(test.inputs.rows() + pool.inputs.rows()),
              sim_timer.seconds(),
              format_seconds(
                  static_cast<double>(test.inputs.rows() + pool.inputs.rows()) *
                  kOpAmpSimSecondsPerSample)
                  .c_str());

  std::unique_ptr<CsvWriter> csv;
  if (!args.get("csv").empty())
    csv = std::make_unique<CsvWriter>(
        args.get("csv"),
        std::vector<std::string>{"metric", "method", "num_samples", "error",
                                 "lambda"});

  obs::JsonValue curves = obs::JsonValue::array();
  for (circuits::OpAmpMetric metric : circuits::kAllOpAmpMetrics) {
    const std::vector<Real> f_test = test.metric_values(metric);
    const std::vector<Real> f_pool = pool.metric_values(metric);

    Table table({"K", "LS [21]", "STAR [1]", "LAR [2]", "OMP"});
    for (Index k : sweep) {
      Matrix train(k, n);
      for (Index r = 0; r < k; ++r) {
        std::copy(pool.inputs.row(r).begin(), pool.inputs.row(r).end(),
                  train.row(r).begin());
      }
      const std::vector<Real> f_train(f_pool.begin(), f_pool.begin() + k);
      const Matrix g_train = dict->design_matrix(train);

      std::vector<std::string> row{std::to_string(k)};
      for (Method method : kAllMethods) {
        if (method == Method::kLeastSquares && k < m) {
          row.push_back("n/a (K<M)");
          continue;
        }
        const MethodResult res =
            run_method(method, dict, g_train, f_train, test.inputs, f_test,
                       args.get_int("max-lambda"));
        row.push_back(format_pct(res.test_error));
        obs::JsonValue point = obs::JsonValue::object();
        point.set("metric", circuits::opamp_metric_name(metric));
        point.set("method", method_name(method));
        point.set("num_samples", static_cast<std::int64_t>(k));
        point.set("test_error", static_cast<double>(res.test_error));
        point.set("lambda", static_cast<std::int64_t>(res.lambda));
        curves.push_back(std::move(point));
        if (csv)
          csv->write_row(std::vector<std::string>{
              circuits::opamp_metric_name(metric), method_name(method),
              std::to_string(k), format_sig(res.test_error, 6),
              std::to_string(res.lambda)});
      }
      table.add_row(row);
    }
    std::printf("\n(%s)\n%s", circuits::opamp_metric_name(metric),
                table.render().c_str());
  }
  bench_report.results().set("error_curves", std::move(curves));

  print_paper_reference({
      "Fig. 4(a-d): with 630 variables, STAR/LAR/OMP reach a few-percent",
      "error by K ~ 400-600 samples while LS needs K >= 1200; OMP tracks or",
      "beats LAR and reduces error by 1.5-5x vs STAR at equal K. Gain (a),",
      "bandwidth (b), power (c), offset (d) all show the same ordering,",
      "with one bandwidth case where LAR edges out OMP."});
  return 0;
}
