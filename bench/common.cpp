#include "common.hpp"

#include <cstdio>

#include "obs/env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "stats/lhs.hpp"
#include "util/timer.hpp"

namespace rsm::bench {

void print_header(const std::string& title, const std::string& subtitle) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("================================================================\n\n");
}

void print_paper_reference(const std::vector<std::string>& lines) {
  std::printf("\n--- paper reference ------------------------------------------\n");
  for (const std::string& line : lines) std::printf("%s\n", line.c_str());
  std::printf("---------------------------------------------------------------\n");
}

std::vector<Real> OpAmpSamples::metric_values(
    circuits::OpAmpMetric metric) const {
  std::vector<Real> out;
  out.reserve(metrics.size());
  for (const circuits::OpAmpMetrics& m : metrics) out.push_back(m.get(metric));
  return out;
}

OpAmpSamples simulate_opamp(const circuits::OpAmpWorkload& opamp,
                            Index num_samples, Rng& rng) {
  OpAmpSamples out;
  out.inputs = monte_carlo_normal(num_samples, opamp.num_variables(), rng);
  out.metrics.reserve(static_cast<std::size_t>(num_samples));
  for (Index k = 0; k < num_samples; ++k)
    out.metrics.push_back(opamp.evaluate(out.inputs.row(k)));
  return out;
}

SramSamples simulate_sram(const sram::SramWorkload& sram, Index num_samples,
                          Rng& rng) {
  SramSamples out;
  out.inputs = monte_carlo_normal(num_samples, sram.num_variables(), rng);
  out.delays.reserve(static_cast<std::size_t>(num_samples));
  for (Index k = 0; k < num_samples; ++k)
    out.delays.push_back(sram.evaluate(out.inputs.row(k)));
  return out;
}

MethodResult run_method(Method method,
                        const std::shared_ptr<const BasisDictionary>& dict,
                        const Matrix& g_train, std::span<const Real> f_train,
                        const Matrix& test_samples,
                        std::span<const Real> f_test, Index max_lambda) {
  BuildOptions opt;
  opt.method = method;
  opt.max_lambda = max_lambda;
  if (method == Method::kLar) {
    // LAR's shrunken (L1-biased) coefficients need a longer path than OMP's
    // unbiased refits to absorb the same coefficient mass; cross-validation
    // still picks the stopping step.
    opt.max_lambda = 3 * max_lambda;
  }
  if (method == Method::kLeastSquares) {
    // Paper LS baseline: plain over-determined fit. Normal equations are
    // ~2x faster than QR at these sizes and equally accurate on random
    // designs; a whisper of ridge guards the K ~ M corner.
    opt.ridge = 1e-8 * static_cast<Real>(g_train.rows());
  }

  WallTimer timer;
  const BuildReport report =
      build_model_from_design(dict, g_train, f_train, opt);
  MethodResult result;
  result.fit_seconds = timer.seconds();
  result.lambda = report.lambda;
  result.test_error = validate_model(report.model, test_samples, f_test);
  return result;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  obs::apply_env_overrides();
  obs::reset_tracing();
  obs::metrics().reset();
  // RSM_OBS_LEVEL=0 means "zero observability" — no capture, so the report
  // carries only results. RSM_OBS_LEVEL=2 already installed a JSONL sink;
  // leave it in place (the report's telemetry field is null then, the
  // records live in the JSONL file instead).
  if (obs::obs_level() >= 1 && obs::telemetry_sink() == nullptr) {
    ring_ = std::make_shared<obs::RingBufferSink>();
    previous_ = obs::set_telemetry_sink(ring_);
  }
}

BenchReport::~BenchReport() {
  obs::write_report(path(), name_, std::move(results_), ring_.get());
  // RSM_TRACE_EXPORT=<path>: the span trees this run accumulated also go
  // out as a Chrome-trace profile (open in https://ui.perfetto.dev).
  obs::export_trace_if_configured("bench." + name_);
  if (ring_ != nullptr) obs::set_telemetry_sink(std::move(previous_));
}

std::string BenchReport::path() const { return "BENCH_" + name_ + ".json"; }

}  // namespace rsm::bench
