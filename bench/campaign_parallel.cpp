// Parallel campaign executor on the Table-IV SRAM workload.
//
//   build/bench/campaign_parallel [--samples 48] [--sim-ms 8]
//
// The paper's SRAM campaign is simulation-latency dominated (29.13 s of
// Spectre per sample on the authors' server); our simulator substitute runs
// in ~1 ms, so this bench reintroduces a scaled per-sample latency as a
// cooperative sleep (--sim-ms) and measures how the work-stealing executor
// amortizes it across workers. Because the wait is a sleep, not a spin, the
// sweep is meaningful even on a single-core runner.
//
// The sweep runs the identical campaign — same samples, same fault plan,
// per-row durable checkpointing into shards — at 1/2/4/8 workers, asserts
// the survivor values are bit-identical across all worker counts (exit 1
// otherwise: determinism is the whole contract), and reports throughput,
// speedup_at_4, and the 4-worker campaign report (with its "execution"
// block) in BENCH_campaign_parallel.json for scripts/check_bench_json.py.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/campaign.hpp"
#include "io/checkpoint.hpp"
#include "stats/lhs.hpp"
#include "util/cancellation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// FNV-1a over the survivor bits: any single-bit divergence between worker
/// counts changes the checksum.
std::uint64_t survivor_checksum(const rsm::CampaignResult& result) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const void* p, std::size_t n) {
    const unsigned char* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  for (const rsm::Real v : result.values) mix(&v, sizeof v);
  for (const rsm::Index s : result.sample_indices) mix(&s, sizeof s);
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsm;
  using namespace rsm::bench;

  CliArgs args;
  args.add_option("samples", "48", "campaign rows (Monte Carlo samples)");
  args.add_option("sim-ms", "8",
                  "simulated per-sample Spectre latency in milliseconds "
                  "(cooperative sleep; stands in for the paper's 29.13 s)");
  args.add_option("fault-rate", "0.05",
                  "injected evaluator fault rate (exercises the retry and "
                  "quarantine paths under parallelism; 0 disables)");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("campaign_parallel").c_str());
    return 0;
  }

  BenchReport bench_report("campaign_parallel");

  sram::SramConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  const sram::SramWorkload sram(cfg);
  const Index n = sram.num_variables();
  const Index k = static_cast<Index>(args.get_int("samples"));
  const long sim_ms = args.get_int("sim-ms");

  Rng rng(4);
  const Matrix samples = monte_carlo_normal(k, n, rng);

  const SampleEvaluator evaluate = [&](std::span<const Real> dy, int) {
    // The latency-dominated part: cooperative sleep standing in for the
    // Spectre run, then the actual (cheap) read-path delay model.
    const Deadline sim = Deadline::after_seconds(
        static_cast<double>(sim_ms) / 1000.0);
    while (!sim.expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      check_cooperative_stop("bench.sim_latency");
    }
    return sram.evaluate(dy);
  };

  print_header("Parallel campaign — Table IV SRAM workload",
               std::to_string(k) + " samples x " + std::to_string(sim_ms) +
                   " ms simulated latency, " + std::to_string(n) +
                   " variables");

  const std::string checkpoint_path = "campaign_parallel.ckpt";
  const double fault_rate = args.get_double("fault-rate");

  Table table({"workers", "wall [s]", "samples/s", "speedup", "stolen",
               "checksum"});
  obs::JsonValue sweep = obs::JsonValue::array();
  double serial_seconds = 0;
  double speedup_at_4 = 0;
  std::uint64_t reference_checksum = 0;
  bool deterministic = true;
  obs::JsonValue four_worker_report;

  for (const int workers : {1, 2, 4, 8}) {
    CampaignOptions options;
    options.num_workers = workers;
    options.max_attempts = 3;
    options.min_success_fraction = 0.5;
    options.checkpoint.path = checkpoint_path;
    if (fault_rate > 0) {
      options.fault_injector = FaultInjector({.fault_rate = fault_rate,
                                              .persistent_fraction = 0.25,
                                              .seed = 42});
    }

    WallTimer timer;
    const CampaignResult result = run_campaign(samples, evaluate, options);
    const double seconds = timer.seconds();

    if (workers == 1) serial_seconds = seconds;
    const double speedup = serial_seconds / seconds;
    if (workers == 4) {
      speedup_at_4 = speedup;
      four_worker_report = result.report.to_json();
    }
    const std::uint64_t checksum = survivor_checksum(result);
    if (workers == 1) {
      reference_checksum = checksum;
    } else if (checksum != reference_checksum) {
      deterministic = false;
    }

    char checksum_hex[32];
    std::snprintf(checksum_hex, sizeof checksum_hex, "%016llx",
                  static_cast<unsigned long long>(checksum));
    char buffer[64];
    std::vector<std::string> row;
    row.push_back(std::to_string(workers));
    std::snprintf(buffer, sizeof buffer, "%.3f", seconds);
    row.push_back(buffer);
    std::snprintf(buffer, sizeof buffer, "%.1f",
                  static_cast<double>(result.report.attempted) / seconds);
    row.push_back(buffer);
    std::snprintf(buffer, sizeof buffer, "%.2fx", speedup);
    row.push_back(buffer);
    row.push_back(std::to_string(
        static_cast<long long>(result.report.tasks_stolen)));
    row.push_back(checksum_hex);
    table.add_row(std::move(row));

    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("workers", static_cast<std::int64_t>(workers));
    entry.set("wall_seconds", seconds);
    entry.set("throughput_samples_per_second",
              static_cast<double>(result.report.attempted) / seconds);
    entry.set("speedup_vs_serial", speedup);
    entry.set("checksum", std::string(checksum_hex));
    sweep.push_back(std::move(entry));
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nspeedup at 4 workers: %.2fx (sleep-dominated workload; the "
              "paper-scale\ncampaign at 29.13 s/sample parallelizes the same "
              "way)\n",
              speedup_at_4);
  std::printf("determinism: survivor bits %s across worker counts\n",
              deterministic ? "identical" : "DIVERGED");

  print_paper_reference(
      {"Table IV campaign: 1000 samples x 29.13 s = 29 130 s of simulation;",
       "the executor's speedup applies to that latency directly."});

  std::remove(checkpoint_path.c_str());
  (void)io::remove_shard_files(checkpoint_path);

  bench_report.results().set("sweep", std::move(sweep));
  bench_report.results().set("speedup_at_4", speedup_at_4);
  bench_report.results().set("deterministic_across_worker_counts",
                             deterministic);
  bench_report.results().set("simulated_sample_latency_ms",
                             static_cast<std::int64_t>(sim_ms));
  bench_report.results().set("campaign", std::move(four_worker_report));
  return deterministic ? 0 : 1;
}
