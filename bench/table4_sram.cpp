// Table IV reproduction: SRAM read-path linear modeling error and cost.
//
//   build/bench/table4_sram [--rows 32] [--cols 32] [--full]
//
// Paper's Table IV (21 310 variables; LS at K = 25 000, sparse at K = 1000):
//                      LS [21]   STAR [1]  LAR [2]   OMP
//   modeling error      9.78%     6.34%     4.94%     4.09%
//   training samples    25 000    1000      1000      1000
//   simulation cost    728 250 s  29 130 s  29 130 s  29 130 s
//   fitting cost        13 856 s    26.5 s    338.3 s   169.7 s
//   total              742 106 s  29 156 s  29 468 s  29 300 s
//   => OMP: 8.5 days -> 8.2 h, a 25x speedup AND the best accuracy.
//
// Default run scales the array to 32x32 (1086 variables) so the LS baseline
// is affordable; --full uses the paper's 128x166 = 21 310 variables and
// skips LS (its design matrix alone would be 3.6 GB).
#include <cstdio>

#include "common.hpp"
#include "stats/lhs.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace rsm;
  using namespace rsm::bench;
  CliArgs args;
  args.add_option("rows", "32", "SRAM rows");
  args.add_option("cols", "32", "SRAM columns");
  args.add_option("sparse-samples", "500", "training samples, sparse methods");
  args.add_flag("full", "paper-size: 128x166 (21310 vars), K=1000, LS skipped");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("table4_sram").c_str());
    return 0;
  }

  sram::SramConfig cfg;
  Index k_sparse = args.get_int("sparse-samples");
  bool run_ls = true;
  if (args.get_flag("full")) {
    cfg.rows = 128;
    cfg.cols = 166;
    k_sparse = 1000;
    run_ls = false;
  } else {
    cfg.rows = args.get_int("rows");
    cfg.cols = args.get_int("cols");
  }

  const sram::SramWorkload sram(cfg);
  const Index n = sram.num_variables();
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  const Index m = dict->size();
  const Index k_ls = run_ls ? (m + m / 4) : 0;

  print_header("Table IV — SRAM read path: linear modeling error and cost",
               std::to_string(n) + " independent variables, M = " +
                   std::to_string(m) + " coefficients");

  BenchReport bench_report("table4_sram");
  bench_report.results().set("variables", static_cast<std::int64_t>(n));
  bench_report.results().set("coefficients", static_cast<std::int64_t>(m));
  obs::JsonValue methods_json = obs::JsonValue::object();

  Rng rng(44);
  WallTimer sim_timer;
  const Index pool_size = run_ls ? k_ls : k_sparse;
  const SramSamples pool = simulate_sram(sram, pool_size, rng);
  const SramSamples test = simulate_sram(sram, 1000, rng);
  const double local_sim = sim_timer.seconds();

  const Matrix g_pool = dict->design_matrix(pool.inputs);
  Matrix g_sparse(k_sparse, m);
  for (Index r = 0; r < k_sparse; ++r)
    std::copy(g_pool.row(r).begin(), g_pool.row(r).end(),
              g_sparse.row(r).begin());

  Table table({"", "LS [21]", "STAR [1]", "LAR [2]", "OMP"});
  std::vector<std::string> row_err{"modeling error"};
  std::vector<std::string> row_k{"# of training samples"};
  std::vector<std::string> row_sim{"simulation cost (paper-equiv)"};
  std::vector<std::string> row_fit{"fitting cost (measured)"};
  std::vector<std::string> row_total{"total (paper-equiv)"};

  for (Method method : kAllMethods) {
    const bool is_ls = method == Method::kLeastSquares;
    if (is_ls && !run_ls) {
      row_err.push_back("(9.78%)");
      row_k.push_back("(25000)");
      row_sim.push_back("(728250 s)");
      row_fit.push_back("(13856 s)");
      row_total.push_back("(paper)");
      continue;
    }
    const Index k = is_ls ? k_ls : k_sparse;
    const Matrix& g = is_ls ? g_pool : g_sparse;
    const std::vector<Real> f_train(pool.delays.begin(),
                                    pool.delays.begin() + k);
    const MethodResult res = run_method(method, dict, g, f_train, test.inputs,
                                        test.delays, 80);
    const double sim = static_cast<double>(k) * kSramSimSecondsPerSample;
    row_err.push_back(format_pct(res.test_error));
    row_k.push_back(std::to_string(k));
    row_sim.push_back(format_seconds(sim));
    row_fit.push_back(format_seconds(res.fit_seconds));
    row_total.push_back(format_seconds(sim + res.fit_seconds));
    std::printf("%-5s lambda=%-4ld err=%5.2f%% fit=%s\n", method_name(method),
                static_cast<long>(res.lambda), 100.0 * res.test_error,
                format_seconds(res.fit_seconds).c_str());
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("training_samples", static_cast<std::int64_t>(k));
    entry.set("fit_seconds", res.fit_seconds);
    entry.set("test_error", static_cast<double>(res.test_error));
    entry.set("lambda", static_cast<std::int64_t>(res.lambda));
    methods_json.set(method_name(method), std::move(entry));
  }
  bench_report.results().set("methods", std::move(methods_json));
  table.add_row(row_err);
  table.add_rule();
  table.add_row(row_k);
  table.add_row(row_sim);
  table.add_row(row_fit);
  table.add_row(row_total);
  std::printf("\n%s", table.render().c_str());
  std::printf("\nlocal simulation of %ld samples took %.1f s (paper-equiv "
              "%s of Spectre)\n",
              static_cast<long>(pool_size + 1000), local_sim,
              format_seconds((pool_size + 1000.0) * kSramSimSecondsPerSample)
                  .c_str());
  if (run_ls)
    std::printf("sparse sample-count speedup over LS: %.1fx\n",
                static_cast<double>(k_ls) / static_cast<double>(k_sparse));

  print_paper_reference({
      "Table IV: error 9.78 / 6.34 / 4.94 / 4.09 %; samples 25000 / 1000 /",
      "1000 / 1000; simulation 728250 / 29130 s; fitting 13856 / 26.5 /",
      "338.3 / 169.7 s; total 742106 / 29156 / 29468 / 29300 s",
      "=> OMP is both the most accurate and 25x cheaper than LS; error",
      "   ordering LS > STAR > LAR > OMP."});
  return 0;
}
