// Table I reproduction: linear performance modeling cost for the OpAmp.
//
//   build/bench/table1_linear_cost [--variables 630]
//
// Paper's Table I (630 variables, 4 metrics):
//                     LS [21]  STAR [1]  LAR [2]  OMP
//   training samples   1200      600       600     600
//   simulation cost   16140s    8070s     8070s   8070s
//   fitting cost        2.6s     1.2s     44.2s   26.4s
//   total             16142s    8071s     8114s   8096s    (~2x LS speedup)
//
// Shape to reproduce: simulation dominates; the sparse methods halve the
// sample count (hence ~2x total speedup); LAR's fitting cost > OMP's > LS's
// on the small linear dictionary.
#include <cstdio>

#include "common.hpp"
#include "core/metrics.hpp"
#include "stats/lhs.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace rsm;
  using namespace rsm::bench;
  CliArgs args;
  args.add_option("variables", "630", "OpAmp variation variables");
  args.add_option("ls-samples", "1200", "training samples for LS");
  args.add_option("sparse-samples", "600", "training samples for sparse methods");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("table1_linear_cost").c_str());
    return 0;
  }

  const Index n = args.get_int("variables");
  const Index k_ls = args.get_int("ls-samples");
  const Index k_sparse = args.get_int("sparse-samples");
  circuits::OpAmpConfig opamp_cfg;
  opamp_cfg.num_variables = n;
  const circuits::OpAmpWorkload opamp(opamp_cfg);
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  RSM_CHECK_MSG(k_ls >= dict->size(), "LS needs K >= M");

  print_header("Table I — linear performance modeling cost (OpAmp)",
               "averaged over the 4 metrics; simulation cost uses the "
               "paper's 13.45 s/sample Spectre constant");

  BenchReport bench_report("table1_linear_cost");
  bench_report.results().set("variables", static_cast<std::int64_t>(n));
  bench_report.results().set("ls_samples", static_cast<std::int64_t>(k_ls));
  bench_report.results().set("sparse_samples",
                             static_cast<std::int64_t>(k_sparse));

  Rng rng(41);
  WallTimer sim_timer;
  const OpAmpSamples pool = simulate_opamp(opamp, k_ls, rng);
  const double local_sim_seconds = sim_timer.seconds();
  const OpAmpSamples test = simulate_opamp(opamp, 800, rng);

  // Shared design matrix; sparse methods use the first k_sparse rows.
  const Matrix g_full = dict->design_matrix(pool.inputs);
  Matrix g_sparse(k_sparse, dict->size());
  for (Index r = 0; r < k_sparse; ++r)
    std::copy(g_full.row(r).begin(), g_full.row(r).end(),
              g_sparse.row(r).begin());

  Table table({"", "LS [21]", "STAR [1]", "LAR [2]", "OMP"});
  std::vector<std::string> row_samples{"# of training samples"};
  std::vector<std::string> row_sim{"simulation cost (paper-equiv)"};
  std::vector<std::string> row_fit{"fitting cost (measured)"};
  std::vector<std::string> row_total{"total (paper-equiv)"};
  std::vector<std::string> row_err{"avg modeling error"};

  obs::JsonValue methods_json = obs::JsonValue::object();
  for (Method method : kAllMethods) {
    const bool is_ls = method == Method::kLeastSquares;
    const Index k = is_ls ? k_ls : k_sparse;
    const Matrix& g = is_ls ? g_full : g_sparse;

    double fit_seconds = 0;
    Real err_sum = 0;
    for (circuits::OpAmpMetric metric : circuits::kAllOpAmpMetrics) {
      std::vector<Real> f_all = pool.metric_values(metric);
      const std::vector<Real> f_train(f_all.begin(), f_all.begin() + k);
      const std::vector<Real> f_test = test.metric_values(metric);
      const MethodResult res = run_method(method, dict, g, f_train,
                                          test.inputs, f_test, 60);
      fit_seconds += res.fit_seconds;
      err_sum += res.test_error;
    }
    const double sim_cost = static_cast<double>(k) * kOpAmpSimSecondsPerSample;
    row_samples.push_back(std::to_string(k));
    row_sim.push_back(format_seconds(sim_cost));
    row_fit.push_back(format_seconds(fit_seconds));
    row_total.push_back(format_seconds(sim_cost + fit_seconds));
    row_err.push_back(format_pct(err_sum / 4));

    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("training_samples", static_cast<std::int64_t>(k));
    entry.set("fit_seconds", fit_seconds);
    entry.set("simulation_seconds_paper_equiv", sim_cost);
    entry.set("avg_test_error", static_cast<double>(err_sum / 4));
    methods_json.set(method_name(method), std::move(entry));
  }
  bench_report.results().set("methods", std::move(methods_json));
  bench_report.results().set(
      "sparse_speedup_over_ls",
      static_cast<double>(k_ls) / static_cast<double>(k_sparse));
  table.add_row(row_samples);
  table.add_row(row_sim);
  table.add_row(row_fit);
  table.add_row(row_total);
  table.add_rule();
  table.add_row(row_err);
  std::printf("%s", table.render().c_str());
  std::printf("\nlocal simulator time for %ld samples: %.2f s (vs %s of "
              "Spectre the paper paid)\n",
              static_cast<long>(k_ls), local_sim_seconds,
              format_seconds(k_ls * kOpAmpSimSecondsPerSample).c_str());
  std::printf("sparse-method speedup over LS (sample-count ratio): %.1fx\n",
              static_cast<double>(k_ls) / static_cast<double>(k_sparse));

  print_paper_reference({
      "Table I: samples 1200 / 600 / 600 / 600;",
      "simulation 16140 / 8070 / 8070 / 8070 s;",
      "fitting 2.6 / 1.2 / 44.2 / 26.4 s;",
      "total 16142 / 8071 / 8114 / 8096 s  =>  ~2x speedup for the sparse",
      "methods, with LAR fitting slower than OMP, both slower than LS."});
  return 0;
}
