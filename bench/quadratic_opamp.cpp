#include "quadratic_opamp.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/metrics.hpp"
#include "stats/lhs.hpp"
#include "util/timer.hpp"

namespace rsm::bench {
namespace {

/// Extracts the sub-matrix of the chosen variable columns.
Matrix select_columns(const Matrix& samples, std::span<const Index> vars) {
  Matrix out(samples.rows(), static_cast<Index>(vars.size()));
  for (Index r = 0; r < samples.rows(); ++r)
    for (std::size_t j = 0; j < vars.size(); ++j)
      out(r, static_cast<Index>(j)) = samples(r, vars[j]);
  return out;
}

}  // namespace

QuadraticExperiment run_quadratic_opamp(const QuadraticOptions& options) {
  QuadraticExperiment exp;
  exp.top_vars = options.top_vars;
  exp.k_sparse = options.k_sparse;

  circuits::OpAmpConfig opamp_cfg;
  opamp_cfg.num_variables = options.num_variables;
  const circuits::OpAmpWorkload opamp(opamp_cfg);
  const Index n = opamp.num_variables();
  Rng rng(options.seed);

  // ---- Stage 1: linear screening (paper: magnitude of linear coefficients).
  std::printf("stage 1: linear screening over %ld variables...\n",
              static_cast<long>(n));
  const OpAmpSamples screen = simulate_opamp(opamp, 600, rng);
  auto lin_dict =
      std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  const Matrix g_screen = lin_dict->design_matrix(screen.inputs);

  std::vector<Real> importance(static_cast<std::size_t>(n), Real{0});
  for (circuits::OpAmpMetric metric : circuits::kAllOpAmpMetrics) {
    const std::vector<Real> f = screen.metric_values(metric);
    BuildOptions opt;
    opt.method = Method::kOmp;
    opt.max_lambda = 80;
    opt.skip_cross_validation = true;
    const BuildReport rpt = build_model_from_design(lin_dict, g_screen, f, opt);
    // Normalize by the metric's variability so all four metrics vote on a
    // comparable scale.
    const Real scale = std::sqrt(rpt.model.analytic_variance());
    if (scale <= 0) continue;
    for (const ModelTerm& t : rpt.model.terms()) {
      const MultiIndex& mi = lin_dict->index(t.basis_index);
      if (mi.is_constant()) continue;
      const Index v = mi.terms()[0].variable;
      importance[static_cast<std::size_t>(v)] =
          std::max(importance[static_cast<std::size_t>(v)],
                   std::abs(t.coefficient) / scale);
    }
  }
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::stable_sort(order.begin(), order.end(), [&](Index a, Index b) {
    return importance[static_cast<std::size_t>(a)] >
           importance[static_cast<std::size_t>(b)];
  });
  std::vector<Index> critical(order.begin(), order.begin() + options.top_vars);
  std::sort(critical.begin(), critical.end());

  // ---- Stage 2: quadratic models over the critical parameters.
  auto quad_dict = std::make_shared<BasisDictionary>(
      BasisDictionary::quadratic(options.top_vars));
  exp.dictionary_size = quad_dict->size();
  exp.k_ls = static_cast<Index>(
      std::ceil(options.ls_oversampling * static_cast<Real>(quad_dict->size())));
  exp.ls_ran = options.run_ls;

  const Index pool_size = options.run_ls ? exp.k_ls : options.k_sparse;
  std::printf("stage 2: %ld quadratic coefficients over %ld critical "
              "variables; simulating %ld + 800 samples...\n",
              static_cast<long>(quad_dict->size()),
              static_cast<long>(options.top_vars),
              static_cast<long>(pool_size));
  WallTimer sim_timer;
  const OpAmpSamples pool = simulate_opamp(opamp, pool_size, rng);
  const OpAmpSamples test = simulate_opamp(opamp, 800, rng);
  exp.local_sim_seconds = sim_timer.seconds();

  const Matrix pool_critical = select_columns(pool.inputs, critical);
  const Matrix test_critical = select_columns(test.inputs, critical);
  const Matrix g_pool = quad_dict->design_matrix(pool_critical);
  Matrix g_sparse(options.k_sparse, quad_dict->size());
  for (Index r = 0; r < options.k_sparse; ++r)
    std::copy(g_pool.row(r).begin(), g_pool.row(r).end(),
              g_sparse.row(r).begin());

  for (int mi = 0; mi < 4; ++mi) {
    const auto metric = circuits::kAllOpAmpMetrics[mi];
    const std::vector<Real> f_pool = pool.metric_values(metric);
    const std::vector<Real> f_test = test.metric_values(metric);
    for (int me = 0; me < 4; ++me) {
      const Method method = kAllMethods[me];
      QuadraticCell& cell =
          exp.cells[static_cast<std::size_t>(mi)][static_cast<std::size_t>(me)];
      if (method == Method::kLeastSquares && !options.run_ls) continue;
      const bool is_ls = method == Method::kLeastSquares;
      const Index k = is_ls ? exp.k_ls : options.k_sparse;
      const Matrix& g = is_ls ? g_pool : g_sparse;
      const std::vector<Real> f_train(f_pool.begin(), f_pool.begin() + k);

      WallTimer fit_timer;
      BuildOptions opt;
      opt.method = method;
      opt.max_lambda = options.max_lambda;
      // LAR's L1-shrunken steps carry less coefficient mass each; give it a
      // longer path and let cross-validation stop it.
      if (method == Method::kLar) opt.max_lambda = 3 * options.max_lambda;
      if (is_ls) opt.ridge = 1e-8 * static_cast<Real>(k);
      const BuildReport rpt = build_model_from_design(quad_dict, g, f_train, opt);
      cell.fit_seconds = fit_timer.seconds();
      cell.lambda = rpt.lambda;
      // Validate on the critical-variable test projection.
      const std::vector<Real> pred = rpt.model.predict_all(test_critical);
      cell.error = relative_rms_error(pred, f_test);
      cell.ran = true;
      std::printf("  %-9s %-4s err=%6.2f%% lambda=%-5ld fit=%s\n",
                  circuits::opamp_metric_name(metric), method_name(method),
                  100.0 * cell.error, static_cast<long>(cell.lambda),
                  format_seconds(cell.fit_seconds).c_str());
    }
  }
  return exp;
}

}  // namespace rsm::bench
