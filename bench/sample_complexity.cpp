// Sample-complexity sweep: empirical check of the K = O(P log M) law
// (Tropp & Gilbert [19]) that underpins the paper's Section IV claim that
// "a large number of model coefficients can be uniquely determined from a
// small number of sampling points".
//
//   build/bench/sample_complexity [--sparsity 8] [--trials 5]
//
// For each dictionary size M, finds the smallest K at which OMP recovers a
// planted P-sparse model in `trials`/`trials` random instances, and prints
// K* alongside P*log2(M) — the two should track each other while M grows by
// orders of magnitude.
#include <cmath>
#include <cstdio>
#include <set>

#include "common.hpp"
#include "core/omp.hpp"
#include "stats/lhs.hpp"
#include "util/cli.hpp"

namespace {

using namespace rsm;

bool recovers(Index k, Index m, Index p, std::uint64_t seed) {
  Rng rng(seed);
  const Matrix g = monte_carlo_normal(k, m, rng);
  std::set<Index> support;
  while (static_cast<Index>(support.size()) < p)
    support.insert(rng.uniform_index(m));
  std::vector<Real> f(static_cast<std::size_t>(k), 0.0);
  for (Index s : support) {
    const Real c = rng.uniform() < 0.5 ? -1.0 : 1.0;
    for (Index r = 0; r < k; ++r)
      f[static_cast<std::size_t>(r)] += c * g(r, s);
  }
  const SolverPath path = OmpSolver().fit_path(g, f, p);
  const std::set<Index> found(path.selection_order.begin(),
                              path.selection_order.end());
  for (Index s : support)
    if (!found.count(s)) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsm::bench;
  CliArgs args;
  args.add_option("sparsity", "8", "planted non-zeros P");
  args.add_option("trials", "5", "instances per (M, K) point");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("sample_complexity").c_str());
    return 0;
  }
  const Index p = args.get_int("sparsity");
  const int trials = static_cast<int>(args.get_int("trials"));

  print_header("Sample complexity of OMP recovery — K* vs O(P log M)",
               "smallest K with " + std::to_string(trials) + "/" +
                   std::to_string(trials) + " exact support recoveries");

  BenchReport bench_report("sample_complexity");
  bench_report.results().set("sparsity", static_cast<std::int64_t>(p));
  obs::JsonValue points = obs::JsonValue::array();

  Table table({"M", "K* (measured)", "P*log2(M)", "K*/(P*log2 M)", "K*/M"});
  for (Index m : {200L, 1000L, 5000L, 20000L, 80000L}) {
    Index k_star = 0;
    for (Index k = p + 2; k <= 1200; k += (k < 60 ? 4 : 10)) {
      bool all = true;
      for (int t = 0; t < trials && all; ++t)
        all = recovers(k, m, p, static_cast<std::uint64_t>(m * 131 + k * 7 + t));
      if (all) {
        k_star = k;
        break;
      }
    }
    const double plogm =
        static_cast<double>(p) * std::log2(static_cast<double>(m));
    table.add_row({std::to_string(m),
                   k_star ? std::to_string(k_star) : std::string(">1200"),
                   format_sig(plogm, 3),
                   k_star ? format_sig(k_star / plogm, 2) : "-",
                   k_star ? format_sig(static_cast<double>(k_star) /
                                           static_cast<double>(m), 2)
                          : "-"});
    obs::JsonValue point = obs::JsonValue::object();
    point.set("dictionary_size", static_cast<std::int64_t>(m));
    point.set("k_star", static_cast<std::int64_t>(k_star));
    point.set("p_log2_m", plogm);
    points.push_back(std::move(point));
  }
  bench_report.results().set("recovery_thresholds", std::move(points));
  std::printf("%s", table.render().c_str());
  std::printf("\nK*/(P log2 M) staying ~constant while K*/M collapses is the"
              "\nlogarithmic scaling the paper's approach rides on: LS would"
              "\nneed K >= M (last column ~1), sparse recovery needs a"
              " couple\nof samples per information bit.\n");
  return 0;
}
