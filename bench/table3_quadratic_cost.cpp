// Table III reproduction: quadratic performance modeling cost for the OpAmp.
//
//   build/bench/table3_quadratic_cost [--top 50] [--sparse-samples 500]
//                                     [--full]
//
// Paper's Table III (M = 20 301 coefficients):
//                      LS [21]   STAR [1]  LAR [2]  OMP
//   training samples    25 000    1000      1000     1000
//   simulation cost    336 250 s  13 450 s  13 450 s 13 450 s
//   fitting cost        51 562 s      92 s    1449 s   1174 s
//   total              387 812 s  13 542 s  14 899 s  14 624 s
//   => OMP: 4 days -> 4 h, a 24x speedup at equal accuracy (Table II).
//
// Shape to reproduce: sample count drops 25x for the sparse methods;
// fitting cost ordering LS >> LAR > OMP >> STAR.
#include <cstdio>

#include "quadratic_opamp.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rsm;
  using namespace rsm::bench;
  CliArgs args;
  args.add_option("top", "50", "critical variables kept after screening");
  args.add_option("sparse-samples", "500", "training samples, sparse methods");
  args.add_flag("full", "paper-size run: top=200, K=1000, LS skipped");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("table3_quadratic_cost").c_str());
    return 0;
  }

  QuadraticOptions opt;
  if (args.get_flag("full")) {
    opt.top_vars = 200;
    opt.k_sparse = 1000;
    opt.run_ls = false;
  } else {
    opt.top_vars = args.get_int("top");
    opt.k_sparse = args.get_int("sparse-samples");
  }

  print_header("Table III — quadratic performance modeling cost (OpAmp)",
               "simulation cost uses the paper's 13.45 s/sample constant; "
               "fitting cost is measured locally");
  BenchReport bench_report("table3_quadratic_cost");
  const QuadraticExperiment exp = run_quadratic_opamp(opt);
  obs::JsonValue methods_json = obs::JsonValue::object();

  Table table({"", "LS [21]", "STAR [1]", "LAR [2]", "OMP"});
  std::vector<std::string> row_k{"# of training samples"};
  std::vector<std::string> row_sim{"simulation cost (paper-equiv)"};
  std::vector<std::string> row_fit{"fitting cost (measured, 4 metrics)"};
  std::vector<std::string> row_total{"total (paper-equiv)"};
  for (int me = 0; me < 4; ++me) {
    const bool is_ls = kAllMethods[me] == Method::kLeastSquares;
    if (is_ls && !exp.ls_ran) {
      row_k.push_back("(25000)");
      row_sim.push_back("(336250 s)");
      row_fit.push_back("(51562 s)");
      row_total.push_back("(paper)");
      continue;
    }
    const Index k = is_ls ? exp.k_ls : exp.k_sparse;
    double fit = 0;
    for (int mi = 0; mi < 4; ++mi)
      fit += exp.cells[static_cast<std::size_t>(mi)][static_cast<std::size_t>(me)]
                 .fit_seconds;
    const double sim = static_cast<double>(k) * kOpAmpSimSecondsPerSample;
    row_k.push_back(std::to_string(k));
    row_sim.push_back(format_seconds(sim));
    row_fit.push_back(format_seconds(fit));
    row_total.push_back(format_seconds(sim + fit));

    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("training_samples", static_cast<std::int64_t>(k));
    entry.set("fit_seconds", fit);
    entry.set("simulation_seconds_paper_equiv", sim);
    methods_json.set(method_name(kAllMethods[me]), std::move(entry));
  }
  bench_report.results().set("methods", std::move(methods_json));
  table.add_row(row_k);
  table.add_row(row_sim);
  table.add_row(row_fit);
  table.add_row(row_total);
  std::printf("\n%s", table.render().c_str());

  if (exp.ls_ran) {
    std::printf("\nsample-count speedup of sparse methods over LS: %.1fx\n",
                static_cast<double>(exp.k_ls) /
                    static_cast<double>(exp.k_sparse));
  }
  std::printf("local simulator spent %.1f s generating samples (the paper "
              "paid days of Spectre)\n",
              exp.local_sim_seconds);

  print_paper_reference({
      "Table III: samples 25000 / 1000 / 1000 / 1000;",
      "simulation 336250 / 13450 / 13450 / 13450 s;",
      "fitting 51562 / 92 / 1449 / 1174 s; total 387812 / 13542 / 14899 /",
      "14624 s => 24x total speedup for OMP at the accuracy of Table II,",
      "with fitting cost ordered LS >> LAR > OMP >> STAR."});
  return 0;
}
