// Table II reproduction: quadratic performance modeling error for the OpAmp.
//
//   build/bench/table2_quadratic_error [--top 50] [--sparse-samples 500]
//                                      [--full]
//
// Paper's Table II (200 critical variables -> 20 301 coefficients;
// LS at K = 25 000, sparse methods at K = 1000):
//              LS      STAR    LAR     OMP
//   Gain       4.21%   8.03%   5.77%   4.39%
//   Bandwidth  3.84%   5.36%   4.11%   2.94%
//   Power      1.52%   4.37%   1.69%   1.17%
//   Offset     3.69%   9.15%   2.94%   1.88%
//
// Shape to reproduce: OMP reduces error 1.5-3x vs STAR and beats LAR;
// OMP at K = k_sparse matches LS at K ~ 25x larger.
//
// The default run scales the critical-variable count down (50 -> M = 1326)
// so the LS baseline finishes in seconds; --full uses the paper's 200
// critical variables (M = 20 301) and skips LS (the paper's LS fit took
// 14.3 h on its own).
#include <cstdio>

#include "quadratic_opamp.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rsm;
  using namespace rsm::bench;
  CliArgs args;
  args.add_option("top", "50", "critical variables kept after screening");
  args.add_option("sparse-samples", "500", "training samples, sparse methods");
  args.add_flag("full", "paper-size run: top=200, K=1000, LS skipped");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("table2_quadratic_error").c_str());
    return 0;
  }

  QuadraticOptions opt;
  if (args.get_flag("full")) {
    opt.top_vars = 200;
    opt.k_sparse = 1000;
    opt.run_ls = false;
  } else {
    opt.top_vars = args.get_int("top");
    opt.k_sparse = args.get_int("sparse-samples");
  }

  print_header("Table II — quadratic performance modeling error (OpAmp)",
               "top-" + std::to_string(opt.top_vars) +
                   " critical variables after linear screening");
  BenchReport bench_report("table2_quadratic_error");
  const QuadraticExperiment exp = run_quadratic_opamp(opt);

  std::printf("\nM = %ld quadratic coefficients; sparse K = %ld, LS K = %s\n\n",
              static_cast<long>(exp.dictionary_size),
              static_cast<long>(exp.k_sparse),
              exp.ls_ran ? std::to_string(exp.k_ls).c_str()
                         : "skipped (see --help)");

  Table table({"", "LS [21]", "STAR [1]", "LAR [2]", "OMP"});
  obs::JsonValue cells = obs::JsonValue::array();
  for (int mi = 0; mi < 4; ++mi) {
    std::vector<std::string> row{
        circuits::opamp_metric_name(circuits::kAllOpAmpMetrics[mi])};
    for (int me = 0; me < 4; ++me) {
      const QuadraticCell& cell =
          exp.cells[static_cast<std::size_t>(mi)][static_cast<std::size_t>(me)];
      row.push_back(cell.ran ? format_pct(cell.error) : "skipped");
      if (!cell.ran) continue;
      obs::JsonValue entry = obs::JsonValue::object();
      entry.set("metric",
                circuits::opamp_metric_name(circuits::kAllOpAmpMetrics[mi]));
      entry.set("method", method_name(kAllMethods[me]));
      entry.set("test_error", static_cast<double>(cell.error));
      entry.set("fit_seconds", cell.fit_seconds);
      cells.push_back(std::move(entry));
    }
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  bench_report.results().set("dictionary_size",
                             static_cast<std::int64_t>(exp.dictionary_size));
  bench_report.results().set("cells", std::move(cells));

  print_paper_reference({
      "Table II: Gain 4.21/8.03/5.77/4.39 %, Bandwidth 3.84/5.36/4.11/2.94 %,",
      "Power 1.52/4.37/1.69/1.17 %, Offset 3.69/9.15/2.94/1.88 %",
      "=> OMP cuts error 1.5-3x vs STAR/LAR and matches LS, which needed",
      "   25x more training samples."});
  return 0;
}
