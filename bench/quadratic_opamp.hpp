// Shared runner for the paper's quadratic OpAmp experiment (Tables II & III).
//
// Stage 1 (paper Section V-A2): fit linear models, rank variables by linear
// coefficient magnitude, keep the top `top_vars` "critical" parameters.
// Stage 2: fit quadratic models over those parameters with all four methods.
// Tables II (error) and III (cost) print different views of one run, so both
// binaries call this runner.
#pragma once

#include <array>

#include "common.hpp"

namespace rsm::bench {

struct QuadraticCell {
  Real error = 0;
  double fit_seconds = 0;
  Index lambda = 0;
  bool ran = false;
};

struct QuadraticExperiment {
  Index top_vars = 0;
  Index dictionary_size = 0;
  Index k_ls = 0;
  Index k_sparse = 0;
  double local_sim_seconds = 0;
  bool ls_ran = false;
  /// cells[metric][method] with methods in kAllMethods order.
  std::array<std::array<QuadraticCell, 4>, 4> cells;
};

struct QuadraticOptions {
  Index num_variables = 630;  // full OpAmp variation space
  Index top_vars = 50;        // critical parameters kept (paper: 200)
  Index k_sparse = 500;       // sparse-method training samples (paper: 1000)
  Real ls_oversampling = 1.25;  // K_LS = ceil(factor * M) (paper: ~1.23)
  bool run_ls = true;         // paper's full size makes LS a 14 h fit
  Index max_lambda = 120;
  std::uint64_t seed = 2009;
};

[[nodiscard]] QuadraticExperiment run_quadratic_opamp(
    const QuadraticOptions& options);

}  // namespace rsm::bench
