// Fig. 6 reproduction: magnitude of the SRAM read-delay linear model
// coefficients estimated by OMP — a handful of large coefficients against
// 21 311 candidate basis functions.
//
//   build/bench/fig6_sparsity [--scaled] [--csv fig6.csv]
//
// Runs at the paper's full size by default (128x166 array = 21 310
// variables, K = 1000 samples; the whole thing is seconds on the local
// timing engine). Paper result: only 36 of 21 311 coefficients non-zero.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "stats/lhs.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace rsm;
  using namespace rsm::bench;
  CliArgs args;
  args.add_flag("scaled", "use a 32x32 array instead of the paper's 128x166");
  args.add_option("samples", "1000", "training samples");
  args.add_option("csv", "fig6.csv", "CSV output path (empty to disable)");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("fig6_sparsity").c_str());
    return 0;
  }

  sram::SramConfig cfg;
  if (args.get_flag("scaled")) {
    cfg.rows = 32;
    cfg.cols = 32;
  }
  const sram::SramWorkload sram(cfg);
  const Index n = sram.num_variables();
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));

  print_header("Fig. 6 — sparsity of the SRAM read-delay model (OMP)",
               "M = " + std::to_string(dict->size()) +
                   " candidate coefficients");

  BenchReport bench_report("fig6_sparsity");
  bench_report.results().set("candidate_coefficients",
                             static_cast<std::int64_t>(dict->size()));

  Rng rng(6);
  const Index k = args.get_int("samples");
  const SramSamples train = simulate_sram(sram, k, rng);

  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 80;
  const BuildReport report =
      build_model(dict, train.inputs, train.delays, opt);

  std::printf("OMP selected %ld of %ld coefficients (%.4f%% non-zero); "
              "CV error %.2f%%\n\n",
              static_cast<long>(report.lambda),
              static_cast<long>(dict->size()),
              100.0 * static_cast<double>(report.lambda) /
                  static_cast<double>(dict->size()),
              100.0 * report.cv.best_error);

  // Sorted magnitude spectrum (the paper plots |coefficient| vs index with
  // everything but ~36 points at zero).
  std::vector<Real> mags;
  for (const ModelTerm& t : report.model.terms())
    if (!dict->index(t.basis_index).is_constant())
      mags.push_back(std::abs(t.coefficient));
  std::sort(mags.rbegin(), mags.rend());

  std::unique_ptr<CsvWriter> csv;
  if (!args.get("csv").empty())
    csv = std::make_unique<CsvWriter>(
        args.get("csv"),
        std::vector<std::string>{"rank", "abs_coefficient_seconds"});

  const Real top = mags.empty() ? Real{1} : mags.front();
  std::printf("rank  |coef| (ps)   relative\n");
  for (std::size_t i = 0; i < mags.size(); ++i) {
    if (csv) csv->write_row({static_cast<double>(i + 1), mags[i]});
    if (i < 25 || i + 3 > mags.size()) {
      const int bars =
          static_cast<int>(50.0 * std::sqrt(mags[i] / top));
      std::printf("%4zu  %10.4f   %s\n", i + 1, mags[i] * 1e12,
                  std::string(static_cast<std::size_t>(std::max(bars, 1)), '#')
                      .c_str());
    } else if (i == 25) {
      std::printf("      ...\n");
    }
  }
  std::printf("\nall remaining %ld candidate coefficients are exactly zero\n",
              static_cast<long>(dict->size() - report.lambda));

  bench_report.results().set("selected_terms",
                             static_cast<std::int64_t>(report.lambda));
  bench_report.results().set("cv_error",
                             static_cast<double>(report.cv.best_error));
  bench_report.results().set("fit_seconds", report.fit_seconds);

  print_paper_reference({
      "Fig. 6: 36 of 21 311 basis functions selected; coefficient",
      "magnitudes fall by >10x within the first dozen terms. The sparse",
      "structure (accessed path dominates; the rest of the array is nearly",
      "irrelevant) is what makes OMP applicable."});
  return 0;
}
