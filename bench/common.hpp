// Shared infrastructure for the paper-reproduction benchmarks.
//
// Cost accounting follows DESIGN.md: the paper's "simulation cost" rows are
// dominated by Cadence Spectre wall-clock (13.45 s/sample for the OpAmp,
// 29.13 s/sample for the SRAM on the authors' 2.8 GHz server). Our simulator
// substitute runs in ~1 ms/sample, so benches report BOTH the measured local
// simulation time and the paper-equivalent cost K * c_sim — the headline
// speedups (2x / 24x / 25x) are sample-count ratios and reproduce exactly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "circuits/opamp.hpp"
#include "core/pipeline.hpp"
#include "linalg/matrix.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "sram/sram.hpp"
#include "stats/rng.hpp"
#include "util/table.hpp"

namespace rsm::bench {

/// Paper per-sample Spectre cost [s] (Tables I/III and Table IV).
inline constexpr double kOpAmpSimSecondsPerSample = 13.45;
inline constexpr double kSramSimSecondsPerSample = 29.13;

/// Prints a titled block with consistent separators.
void print_header(const std::string& title, const std::string& subtitle);

/// Prints the "paper reference" block under a measured table.
void print_paper_reference(const std::vector<std::string>& lines);

/// Simulated OpAmp sample set: inputs and all four metrics per row.
struct OpAmpSamples {
  Matrix inputs;  // K x N
  std::vector<circuits::OpAmpMetrics> metrics;

  [[nodiscard]] std::vector<Real> metric_values(
      circuits::OpAmpMetric metric) const;
};

/// Runs the OpAmp testbench over `num_samples` Monte Carlo points.
[[nodiscard]] OpAmpSamples simulate_opamp(const circuits::OpAmpWorkload& opamp,
                                          Index num_samples, Rng& rng);

/// Simulated SRAM sample set.
struct SramSamples {
  Matrix inputs;
  std::vector<Real> delays;
};

[[nodiscard]] SramSamples simulate_sram(const sram::SramWorkload& sram,
                                        Index num_samples, Rng& rng);

/// All four methods in paper column order.
inline constexpr Method kAllMethods[] = {Method::kLeastSquares, Method::kStar,
                                         Method::kLar, Method::kOmp};

/// Fits `method` on a pre-built design matrix and reports testing error and
/// fitting cost. LS uses the normal-equation fast path (the design matrices
/// here are well-conditioned random samples).
struct MethodResult {
  Real test_error = 0;
  Index lambda = 0;
  double fit_seconds = 0;
};

[[nodiscard]] MethodResult run_method(
    Method method, const std::shared_ptr<const BasisDictionary>& dict,
    const Matrix& g_train, std::span<const Real> f_train,
    const Matrix& test_samples, std::span<const Real> f_test,
    Index max_lambda);

/// Scope guard turning one bench run into a machine-readable report.
///
/// On construction it applies the RSM_OBS_LEVEL environment override, resets
/// the span tree and metrics registry (so the report covers exactly this
/// run), and — unless observability is off or a sink is already installed
/// (RSM_OBS_LEVEL=2) — captures telemetry into a ring buffer. On destruction
/// it writes `BENCH_<name>.json` (schema in docs/observability.md) into the
/// working directory and restores the previous telemetry sink.
///
///   int main() {
///     bench::BenchReport bench_report("table1_linear_cost");
///     ...
///     bench_report.results().set("speedup", 2.0);
///   }
class BenchReport {
 public:
  explicit BenchReport(std::string name);
  ~BenchReport();
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Tool-specific `results` object embedded in the report.
  [[nodiscard]] obs::JsonValue& results() { return results_; }

  /// The report path this guard will write ("BENCH_<name>.json").
  [[nodiscard]] std::string path() const;

 private:
  std::string name_;
  obs::JsonValue results_ = obs::JsonValue::object();
  std::shared_ptr<obs::RingBufferSink> ring_;
  std::shared_ptr<obs::TelemetrySink> previous_;
};

}  // namespace rsm::bench
