// Serving-layer benchmark: fit once offline, evaluate millions online.
//
//   build/bench/model_serve [--rows 32] [--cols 32] [--train-samples 500]
//
// Fits the Table-IV-scale SRAM read-delay model (32x32 array, 1086
// variables, OMP at K = 500 like bench/table4_sram.cpp), pushes it through
// the registry round trip (save -> load must reproduce predict() and
// gradient() bit for bit), then measures the serving hot paths:
//
//   * scalar  — SparseModel::predict one point at a time (the eval RPC);
//   * batched — SparseModel::predict_batch over a batch-size sweep (the
//     eval_batch RPC), reported as throughput and speedup vs scalar;
//   * protocol — deterministic frame round-trip / corruption counts for the
//     wire layer (every corrupted frame must be rejected);
//   * server — a ModelServer driven synchronously over socketpairs through
//     poll_once(), so the overload / deadline / hot-reload counters are
//     exact integers: a 12-frame burst against a pending cap of 4 sheds
//     exactly 8 while a healthy connection is untouched, a half-frame past
//     the read deadline times out exactly once, and one good + one corrupt
//     registry publish yield exactly one reload and one reload failure.
//
// The paper context for the headline number: one Spectre SRAM sample costs
// 29.13 s; a fitted model served at >1e6 evals/s replaces simulation at a
// >3e7x per-point ratio, which is what makes model-based yield/worst-case
// sweeps (figs 4-6) interactive instead of cluster-scale.
//
// BENCH_model_serve.json: deterministic science (dimensions, lambda, test
// error, round-trip bits, checksums, protocol counts) is exact-gated by
// scripts/bench_compare.py; throughput keys are time-like and stay
// informational. --min-evals-per-second / --min-batch-speedup turn the
// acceptance thresholds into hard exit-status checks when generating an
// official baseline.
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "serve/model_codec.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "stats/lhs.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// Bit-level equality: distinguishes -0.0 from 0.0 and treats equal NaN
/// patterns as equal, which is exactly the "same artifact" claim the
/// registry makes.
bool same_bits(rsm::Real a, rsm::Real b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsm;
  using namespace rsm::bench;
  CliArgs args;
  args.add_option("rows", "32", "SRAM rows");
  args.add_option("cols", "32", "SRAM columns");
  args.add_option("train-samples", "500", "OMP training samples");
  args.add_option("scalar-evals", "1000000", "single-point predict calls");
  args.add_option("batch-rows", "2097152", "total rows per batch-size sweep");
  args.add_option("min-evals-per-second", "0",
                  "fail unless scalar throughput reaches this (0 = report "
                  "only)");
  args.add_option("min-batch-speedup", "0",
                  "fail unless batch-1024 speedup reaches this (0 = report "
                  "only)");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("model_serve").c_str());
    return 0;
  }

  sram::SramConfig cfg;
  cfg.rows = args.get_int("rows");
  cfg.cols = args.get_int("cols");
  const sram::SramWorkload sram(cfg);
  const Index n = sram.num_variables();
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));

  print_header("Model serving: registry round trip and evaluation throughput",
               std::to_string(n) + " variables, OMP fit at K = " +
                   args.get("train-samples"));

  BenchReport bench_report("model_serve");
  bench_report.results().set("variables", static_cast<std::int64_t>(n));
  bench_report.results().set("coefficients",
                             static_cast<std::int64_t>(dict->size()));

  // ---- Fit offline (the Table IV OMP recipe). ----
  Rng rng(44);
  const Index k_train = args.get_int("train-samples");
  const SramSamples train = simulate_sram(sram, k_train, rng);
  const SramSamples test = simulate_sram(sram, 1000, rng);
  BuildOptions opt;
  opt.method = Method::kOmp;
  opt.max_lambda = 80;
  WallTimer fit_timer;
  const BuildReport fit = build_model(dict, train.inputs, train.delays, opt);
  const double fit_seconds = fit_timer.seconds();
  const SparseModel& model = fit.model;
  const Real test_error = validate_model(model, test.inputs, test.delays);
  std::printf("fit: lambda=%ld, test error %.2f%%, %.1f s (paper-equiv "
              "simulation for K=%ld: %s)\n",
              static_cast<long>(fit.lambda), 100.0 * test_error, fit_seconds,
              static_cast<long>(k_train),
              format_seconds(static_cast<double>(k_train) *
                             kSramSimSecondsPerSample)
                  .c_str());
  bench_report.results().set("training_samples",
                             static_cast<std::int64_t>(k_train));
  bench_report.results().set("lambda", static_cast<std::int64_t>(fit.lambda));
  bench_report.results().set("test_error", static_cast<double>(test_error));
  bench_report.results().set("fit_seconds", fit_seconds);

  // ---- Registry round trip: save -> load must be the same function. ----
  const std::filesystem::path reg_root =
      std::filesystem::temp_directory_path() / "rsm_bench_model_serve";
  std::filesystem::remove_all(reg_root);
  serve::ModelRegistry registry(reg_root.string());
  const std::uint32_t version = registry.save("sram_delay", model);
  const SparseModel loaded = registry.load("sram_delay", version);

  Rng probe_rng(7);
  const Index kProbe = 1000;
  const Matrix probes = monte_carlo_normal(kProbe, n, probe_rng);
  bool predict_identical = true;
  bool gradient_identical = true;
  for (Index r = 0; r < kProbe; ++r) {
    if (!same_bits(model.predict(probes.row(r)),
                   loaded.predict(probes.row(r))))
      predict_identical = false;
    const std::vector<Real> ga = model.gradient(probes.row(r));
    const std::vector<Real> gb = loaded.gradient(probes.row(r));
    for (Index j = 0; j < n; ++j)
      if (!same_bits(ga[static_cast<std::size_t>(j)],
                     gb[static_cast<std::size_t>(j)]))
        gradient_identical = false;
  }
  std::printf("registry round trip over %ld probes: predict %s, gradient "
              "%s\n",
              static_cast<long>(kProbe),
              predict_identical ? "bit-identical" : "DIVERGED",
              gradient_identical ? "bit-identical" : "DIVERGED");
  obs::JsonValue round_trip = obs::JsonValue::object();
  round_trip.set("probes", static_cast<std::int64_t>(kProbe));
  round_trip.set("predict_identical", predict_identical);
  round_trip.set("gradient_identical", gradient_identical);
  round_trip.set("version", static_cast<std::int64_t>(version));
  char fingerprint_hex[17];
  std::snprintf(fingerprint_hex, sizeof fingerprint_hex, "%016llx",
                static_cast<unsigned long long>(
                    serve::dictionary_fingerprint(model.dictionary())));
  round_trip.set("dictionary_fingerprint", fingerprint_hex);
  bench_report.results().set("round_trip", std::move(round_trip));
  std::filesystem::remove_all(reg_root);

  // ---- Scalar throughput: the eval RPC hot path. ----
  const Index scalar_evals = args.get_int("scalar-evals");
  Real scalar_checksum = 0;
  WallTimer scalar_timer;
  for (Index i = 0; i < scalar_evals; ++i)
    scalar_checksum += model.predict(probes.row(i % kProbe));
  const double scalar_seconds = scalar_timer.seconds();
  const double scalar_eps =
      static_cast<double>(scalar_evals) / scalar_seconds;
  std::printf("scalar: %ld evals in %.3f s = %.2fM evals/s\n",
              static_cast<long>(scalar_evals), scalar_seconds,
              scalar_eps / 1e6);
  obs::JsonValue scalar_json = obs::JsonValue::object();
  scalar_json.set("evals", static_cast<std::int64_t>(scalar_evals));
  scalar_json.set("checksum", static_cast<double>(scalar_checksum));
  scalar_json.set("seconds", scalar_seconds);
  scalar_json.set("evals_per_second", scalar_eps);
  bench_report.results().set("scalar", std::move(scalar_json));

  // ---- Batch sweep: the eval_batch RPC hot path. ----
  const Index batch_rows_total = args.get_int("batch-rows");
  const Index kBatchSizes[] = {16, 64, 256, 1024, 4096};
  Table table({"batch size", "rows", "Mevals/s", "speedup vs scalar"});
  obs::JsonValue batch_json = obs::JsonValue::object();
  double speedup_1024 = 0;
  for (const Index batch : kBatchSizes) {
    Matrix block(batch, n);
    for (Index r = 0; r < batch; ++r)
      std::copy(probes.row(r % kProbe).begin(), probes.row(r % kProbe).end(),
                block.row(r).begin());
    std::vector<Real> out(static_cast<std::size_t>(batch));
    const Index reps = batch_rows_total / batch;
    Real batch_checksum = 0;
    WallTimer batch_timer;
    for (Index rep = 0; rep < reps; ++rep) {
      model.predict_batch(block, out);
      batch_checksum += out[static_cast<std::size_t>(rep) %
                            static_cast<std::size_t>(batch)];
    }
    const double seconds = batch_timer.seconds();
    const double eps = static_cast<double>(reps * batch) / seconds;
    const double speedup = eps / scalar_eps;
    if (batch == 1024) speedup_1024 = speedup;
    table.add_row({std::to_string(batch),
                   std::to_string(reps * batch),
                   format_sig(eps / 1e6, 3),
                   format_sig(speedup, 3) + "x"});
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("rows", static_cast<std::int64_t>(reps * batch));
    entry.set("checksum", static_cast<double>(batch_checksum));
    entry.set("evals_per_second", eps);
    entry.set("speedup_vs_scalar", speedup);
    batch_json.set(std::to_string(batch), std::move(entry));
  }
  bench_report.results().set("batch", std::move(batch_json));
  std::printf("\n%s\n", table.render().c_str());

  // ---- Protocol layer: deterministic framing counts. ----
  const Index kFrames = 256;
  Index frames_round_tripped = 0;
  Index corrupted_rejected = 0;
  for (Index i = 0; i < kFrames; ++i) {
    std::string payload(static_cast<std::size_t>(1 + i % 97), '\0');
    for (std::size_t b = 0; b < payload.size(); ++b)
      payload[b] = static_cast<char>((static_cast<Index>(b) * 31 + i) % 251);
    std::string buffer = serve::encode_frame(
        serve::MessageType::kEvalRequest, payload);
    auto frame = serve::try_extract_frame(buffer);
    if (frame && frame->payload == payload && buffer.empty())
      ++frames_round_tripped;

    std::string corrupt = serve::encode_frame(
        serve::MessageType::kEvalRequest, payload);
    corrupt[corrupt.size() - 1 - static_cast<std::size_t>(i) % 4] ^=
        static_cast<char>(0x40);  // flip one CRC bit
    try {
      (void)serve::try_extract_frame(corrupt);
    } catch (const ProtocolError&) {
      ++corrupted_rejected;
    }
  }
  std::printf("protocol: %ld/%ld frames round-tripped, %ld/%ld corrupted "
              "frames rejected\n",
              static_cast<long>(frames_round_tripped),
              static_cast<long>(kFrames),
              static_cast<long>(corrupted_rejected),
              static_cast<long>(kFrames));
  obs::JsonValue protocol_json = obs::JsonValue::object();
  protocol_json.set("frames_round_tripped",
                    static_cast<std::int64_t>(frames_round_tripped));
  protocol_json.set("corrupted_frames_rejected",
                    static_cast<std::int64_t>(corrupted_rejected));
  protocol_json.set("frames_attempted", static_cast<std::int64_t>(kFrames));
  bench_report.results().set("protocol", std::move(protocol_json));

  // ---- Server: exact overload / deadline / reload counters. ----
  // The server is driven synchronously: connections are socketpair ends
  // adopted via adopt_connection() and every cycle is an explicit
  // poll_once() call, so recv segmentation cannot smear a burst across
  // cycles and every counter below is a deterministic integer that
  // bench_compare.py gates exactly.
  const std::filesystem::path srv_root =
      std::filesystem::temp_directory_path() / "rsm_bench_model_serve_srv";
  std::filesystem::remove_all(srv_root);
  serve::ModelRegistry srv_registry(srv_root.string());
  srv_registry.save("srv", model);

  serve::ServerOptions srv_options;
  srv_options.socket_path = (srv_root / "bench.sock").string();
  srv_options.registry_root = srv_root.string();
  srv_options.num_threads = 1;
  srv_options.max_inflight_requests = 8;
  srv_options.max_pending_per_connection = 4;
  srv_options.retry_after_ms = 25;
  srv_options.read_timeout_seconds = 0.05;
  serve::ModelServer server(std::move(srv_options));

  auto make_pair_fd = [&](int& client_fd) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
      throw IoError("socketpair() failed");
    client_fd = fds[0];
    server.adopt_connection(fds[1]);
  };
  auto pump = [](int fd, std::string& buf) {
    char tmp[65536];
    while (true) {
      const ssize_t r = ::recv(fd, tmp, sizeof(tmp), MSG_DONTWAIT);
      if (r <= 0) break;
      buf.append(tmp, static_cast<std::size_t>(r));
    }
  };

  std::string eval_payload;
  serve::put_bytes(eval_payload, "srv");
  serve::put_u32(eval_payload, 0);  // version 0 = latest
  serve::put_u32(eval_payload, static_cast<std::uint32_t>(n));
  for (Index j = 0; j < n; ++j) serve::put_real(eval_payload, 0);
  const std::string eval_frame =
      serve::encode_frame(serve::MessageType::kEvalRequest, eval_payload);

  int burst_fd = -1;
  int healthy_fd = -1;
  make_pair_fd(burst_fd);
  make_pair_fd(healthy_fd);

  // One 12-frame burst and one healthy single request, same poll cycle:
  // the per-connection cap (4) sheds exactly 8 of the burst, the global
  // budget (8) still has room, and the healthy connection is untouched.
  // The burst uses list_models frames (13 bytes each) so all 12 arrive in
  // the event loop's single recv for that cycle — an eval frame carries
  // n doubles and would smear the burst across cycles, each with a fresh
  // admission budget.
  const std::string list_frame =
      serve::encode_frame(serve::MessageType::kListModelsRequest, "");
  std::string burst_bytes;
  for (int i = 0; i < 12; ++i) burst_bytes += list_frame;
  (void)::send(burst_fd, burst_bytes.data(), burst_bytes.size(), MSG_NOSIGNAL);
  (void)::send(healthy_fd, eval_frame.data(), eval_frame.size(), MSG_NOSIGNAL);
  server.poll_once(0);
  server.poll_once(0);

  std::string burst_rx;
  std::string healthy_rx;
  pump(burst_fd, burst_rx);
  pump(healthy_fd, healthy_rx);
  Index burst_answered = 0;
  Index burst_overloaded = 0;
  std::int64_t retry_hint_ms = -1;
  while (auto f = serve::try_extract_frame(burst_rx)) {
    if (f->type == serve::MessageType::kListModelsResponse) ++burst_answered;
    if (f->type == serve::MessageType::kErrorResponse) {
      serve::WireReader in(f->payload, "error frame");
      const std::uint8_t code = in.u8();
      (void)in.bytes();  // message
      if (code == static_cast<std::uint8_t>(ErrorCode::kOverloaded)) {
        ++burst_overloaded;
        retry_hint_ms = static_cast<std::int64_t>(in.u32());
      }
    }
  }
  Index healthy_evals = 0;
  while (auto f = serve::try_extract_frame(healthy_rx))
    if (f->type == serve::MessageType::kEvalResponse) ++healthy_evals;

  // Hot reload: one good publish swaps, one corrupt publish fails closed.
  const std::string reload_frame =
      serve::encode_frame(serve::MessageType::kReloadRequest, "");
  std::uint32_t reload_counts[2][2] = {{0, 0}, {0, 0}};
  for (int round = 0; round < 2; ++round) {
    const std::uint32_t version = srv_registry.save("srv", model);
    if (round == 1) {
      // Publish a corrupt artifact as the newest version: the reload must
      // reject it (CRC) and the server must keep serving the last-good one.
      std::ofstream corrupt(srv_registry.path_for("srv", version),
                            std::ios::binary | std::ios::trunc);
      corrupt << "not a model";
    }
    (void)::send(healthy_fd, reload_frame.data(), reload_frame.size(),
                 MSG_NOSIGNAL);
    server.poll_once(0);
    std::string rx;
    pump(healthy_fd, rx);
    if (auto f = serve::try_extract_frame(rx);
        f && f->type == serve::MessageType::kReloadResponse) {
      serve::WireReader in(f->payload, "reload response");
      reload_counts[round][0] = in.u32();
      reload_counts[round][1] = in.u32();
    }
  }
  // After the failed swap the server must keep answering evals from the
  // last-good version.
  (void)::send(healthy_fd, eval_frame.data(), eval_frame.size(), MSG_NOSIGNAL);
  server.poll_once(0);
  std::string post_rx;
  pump(healthy_fd, post_rx);
  Index post_reload_evals = 0;
  while (auto f = serve::try_extract_frame(post_rx))
    if (f->type == serve::MessageType::kEvalResponse) ++post_reload_evals;

  // Slow loris: a half frame past the read deadline times out exactly once.
  int loris_fd = -1;
  make_pair_fd(loris_fd);
  (void)::send(loris_fd, eval_frame.data(), 5, MSG_NOSIGNAL);
  server.poll_once(0);   // ingest the partial frame, arm the read deadline
  server.poll_once(70);  // idle past the 50 ms deadline, then enforce it
  server.poll_once(0);
  std::string loris_rx;
  pump(loris_fd, loris_rx);
  Index loris_timeouts = 0;
  while (auto f = serve::try_extract_frame(loris_rx)) {
    if (f->type != serve::MessageType::kErrorResponse) continue;
    serve::WireReader in(f->payload, "error frame");
    if (in.u8() == static_cast<std::uint8_t>(ErrorCode::kConnectionTimeout))
      ++loris_timeouts;
  }

  ::close(burst_fd);
  ::close(healthy_fd);
  ::close(loris_fd);

  const serve::ServerStats& server_stats = server.stats();
  std::printf("server: %llu requests = %llu accepted + %llu shed "
              "(burst saw %ld answers / %ld overloaded, retry hint %lld ms, "
              "healthy saw %ld), reloads %llu/%llu failed, read-deadline "
              "timeouts %llu\n",
              static_cast<unsigned long long>(server_stats.requests_served),
              static_cast<unsigned long long>(server_stats.requests_admitted),
              static_cast<unsigned long long>(server_stats.requests_shed),
              static_cast<long>(burst_answered),
              static_cast<long>(burst_overloaded),
              static_cast<long long>(retry_hint_ms),
              static_cast<long>(healthy_evals),
              static_cast<unsigned long long>(server_stats.reloads),
              static_cast<unsigned long long>(server_stats.reload_failures),
              static_cast<unsigned long long>(
                  server_stats.connections_timed_out));
  obs::JsonValue server_json = obs::JsonValue::object();
  server_json.set("requests",
                  static_cast<std::int64_t>(server_stats.requests_served));
  server_json.set("accepted",
                  static_cast<std::int64_t>(server_stats.requests_admitted));
  server_json.set("shed",
                  static_cast<std::int64_t>(server_stats.requests_shed));
  server_json.set("timed_out", static_cast<std::int64_t>(
                                   server_stats.connections_timed_out));
  server_json.set("idle_closed",
                  static_cast<std::int64_t>(server_stats.idle_closed));
  server_json.set("reloads",
                  static_cast<std::int64_t>(server_stats.reloads));
  server_json.set("reload_failures",
                  static_cast<std::int64_t>(server_stats.reload_failures));
  server_json.set("burst_overloaded",
                  static_cast<std::int64_t>(burst_overloaded));
  server_json.set("healthy_evals",
                  static_cast<std::int64_t>(healthy_evals));
  server_json.set("retry_after_hint_ms",
                  static_cast<std::int64_t>(retry_hint_ms));
  bench_report.results().set("server", std::move(server_json));
  std::filesystem::remove_all(srv_root);

  const bool server_ok =
      burst_answered == 4 && burst_overloaded == 8 && healthy_evals == 1 &&
      retry_hint_ms == 25 && post_reload_evals == 1 && loris_timeouts == 1 &&
      reload_counts[0][0] == 1 && reload_counts[0][1] == 0 &&
      reload_counts[1][0] == 0 && reload_counts[1][1] == 1 &&
      server_stats.requests_shed == 8 &&
      server_stats.requests_admitted + server_stats.requests_shed ==
          server_stats.requests_served &&
      server_stats.reload_failures == 1 &&
      server_stats.connections_timed_out == 1;
  if (!server_ok)
    std::fprintf(stderr, "FAIL: server overload/deadline/reload counters "
                         "diverged from the deterministic script\n");

  print_paper_reference({
      "One Spectre SRAM sample costs 29.13 s (Table IV); a served model at",
      ">1e6 evals/s replaces it at a >3e7x per-point ratio, which is what",
      "turns yield and worst-case sweeps (figs 4-6) interactive."});

  bool ok = predict_identical && gradient_identical &&
            frames_round_tripped == kFrames && corrupted_rejected == kFrames &&
            server_ok;
  const double min_eps = args.get_double("min-evals-per-second");
  if (min_eps > 0 && scalar_eps < min_eps) {
    std::fprintf(stderr, "FAIL: scalar %.0f evals/s < required %.0f\n",
                 scalar_eps, min_eps);
    ok = false;
  }
  const double min_speedup = args.get_double("min-batch-speedup");
  if (min_speedup > 0 && speedup_1024 < min_speedup) {
    std::fprintf(stderr, "FAIL: batch-1024 speedup %.2fx < required %.2fx\n",
                 speedup_1024, min_speedup);
    ok = false;
  }
  if (!ok) std::fprintf(stderr, "model_serve: acceptance checks failed\n");
  return ok ? 0 : 1;
}
