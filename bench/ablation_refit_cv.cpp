// Ablation studies of the design choices DESIGN.md calls out (not a paper
// table; supports the paper's explanations of *why* OMP wins).
//
//   build/bench/ablation_refit_cv
//
// A. Re-fit ablation (Algorithm 1 Step 6): OMP vs STAR as basis-vector
//    correlation grows. The re-fit is exactly the OMP-STAR delta, so the gap
//    should widen with correlation (the paper's Section V-A explanation).
// B. Cross-validation fold count Q: error and chosen lambda for Q = 2/4/10
//    (the paper uses Q = 4, Fig. 2).
// C. Sampling scheme: Monte Carlo vs Latin hypercube at small K — LHS
//    stratification reduces the noise of the inner-product estimator (14).
// D. Joint vs independent selection: simultaneous OMP over the OpAmp's four
//    metrics vs four separate OMP fits — total support size and accuracy.
#include <cmath>
#include <cstdio>
#include <set>

#include "common.hpp"
#include "core/cross_validation.hpp"
#include "core/omp.hpp"
#include "core/somp.hpp"
#include "core/star.hpp"
#include "core/synthetic.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/lhs.hpp"
#include "util/cli.hpp"

namespace {

using namespace rsm;
using namespace rsm::bench;

/// Builds a design matrix whose columns are pairwise correlated by ~rho and
/// a P-sparse target over it; returns test error of a fitted path solver.
Real correlated_recovery_error(const PathSolver& solver, Real rho, Index k,
                               Index m, Index p, std::uint64_t seed) {
  Rng rng(seed);
  const Matrix base = monte_carlo_normal(k, m, rng);
  const std::vector<Real> common = rng.normal_vector(k);
  Matrix g(k, m);
  const Real mix = std::sqrt(rho / (1 - rho));  // corr(coli, colj) ~ rho
  for (Index j = 0; j < m; ++j) {
    std::vector<Real> col = base.col(j);
    axpy(mix, common, col);
    g.set_col(j, col);
  }
  std::vector<Real> alpha(static_cast<std::size_t>(m), Real{0});
  for (Index i = 0; i < p; ++i)
    alpha[static_cast<std::size_t>(rng.uniform_index(m))] =
        rng.uniform() < 0.5 ? -1.0 : 1.0;
  std::vector<Real> f(static_cast<std::size_t>(k), Real{0});
  for (Index j = 0; j < m; ++j)
    if (alpha[static_cast<std::size_t>(j)] != 0)
      axpy(alpha[static_cast<std::size_t>(j)], g.col(j), f);
  for (Real& v : f) v += 0.05 * rng.normal();

  const SolverPath path = solver.fit_path(g, f, 2 * p);
  // In-sample residual fraction after 2P steps (both methods see identical
  // data; the residual gap is pure algorithm).
  return path.residual_norms.back() / nrm2(f);
}

void ablation_refit() {
  std::printf("A. re-fit ablation: residual after 2P steps, OMP vs STAR\n");
  Table table({"column correlation", "STAR residual", "OMP residual",
               "STAR/OMP"});
  for (Real rho : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    Real star_sum = 0, omp_sum = 0;
    for (std::uint64_t s = 0; s < 5; ++s) {
      star_sum += correlated_recovery_error(StarSolver(), rho, 120, 200, 8,
                                            100 + s);
      omp_sum +=
          correlated_recovery_error(OmpSolver(), rho, 120, 200, 8, 100 + s);
    }
    table.add_row({format_sig(rho, 2), format_pct(star_sum / 5),
                   format_pct(omp_sum / 5),
                   format_sig(star_sum / std::max(omp_sum, 1e-12), 3) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablation_cv_folds() {
  std::printf("B. cross-validation fold count (paper uses Q = 4)\n");
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(20));
  Rng rng(7);
  SyntheticOptions sopt;
  sopt.num_active = 8;
  sopt.noise_stddev = 0.1;
  const SyntheticSparseFunction fn(dict, sopt, rng);
  const Matrix train = monte_carlo_normal(120, 20, rng);
  const Matrix test = monte_carlo_normal(2000, 20, rng);
  const std::vector<Real> f_train = fn.observe(train, rng);
  const std::vector<Real> f_test = fn.observe(test, rng);

  Table table({"Q", "chosen lambda", "test error", "CV fits"});
  for (int q : {2, 4, 10}) {
    BuildOptions opt;
    opt.method = Method::kOmp;
    opt.max_lambda = 30;
    opt.cv_folds = q;
    const BuildReport rpt = build_model(dict, train, f_train, opt);
    table.add_row({std::to_string(q), std::to_string(rpt.lambda),
                   format_pct(validate_model(rpt.model, test, f_test)),
                   std::to_string(q) + " paths"});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablation_sampling() {
  std::printf("C. Monte Carlo vs Latin hypercube sampling at small K\n");
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::quadratic(15));
  Table table({"K", "MC error", "LHS error"});
  for (Index k : {60L, 90L, 140L}) {
    Real mc_sum = 0, lhs_sum = 0;
    for (std::uint64_t s = 0; s < 5; ++s) {
      Rng rng(200 + s);
      SyntheticOptions sopt;
      sopt.num_active = 6;
      sopt.noise_stddev = 0.05;
      const SyntheticSparseFunction fn(dict, sopt, rng);
      const Matrix test = monte_carlo_normal(1500, 15, rng);
      const std::vector<Real> f_test = fn.observe(test, rng);

      BuildOptions opt;
      opt.method = Method::kOmp;
      opt.max_lambda = 20;
      const Matrix train_mc = monte_carlo_normal(k, 15, rng);
      const std::vector<Real> f_mc = fn.observe(train_mc, rng);
      mc_sum += validate_model(build_model(dict, train_mc, f_mc, opt).model,
                               test, f_test);
      const Matrix train_lhs = latin_hypercube_normal(k, 15, rng);
      const std::vector<Real> f_lhs = fn.observe(train_lhs, rng);
      lhs_sum += validate_model(build_model(dict, train_lhs, f_lhs, opt).model,
                                test, f_test);
    }
    table.add_row({std::to_string(k), format_pct(mc_sum / 5),
                   format_pct(lhs_sum / 5)});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablation_joint_selection() {
  std::printf("D. simultaneous OMP (shared support) vs per-metric OMP "
              "(OpAmp, 4 metrics)\n");
  circuits::OpAmpConfig cfg;
  cfg.num_variables = 200;
  const circuits::OpAmpWorkload opamp(cfg);
  const Index n = opamp.num_variables();
  Rng rng(55);
  const OpAmpSamples train = simulate_opamp(opamp, 250, rng);
  const OpAmpSamples test = simulate_opamp(opamp, 500, rng);
  auto dict = std::make_shared<BasisDictionary>(BasisDictionary::linear(n));
  const Matrix g = dict->design_matrix(train.inputs);

  // Independent OMP per metric.
  std::set<Index> union_support;
  Real indep_err = 0;
  const Index lambda = 30;
  for (circuits::OpAmpMetric metric : circuits::kAllOpAmpMetrics) {
    const std::vector<Real> f = train.metric_values(metric);
    const SolverPath path = OmpSolver().fit_path(g, f, lambda);
    const Index t = path.num_steps() - 1;
    for (Index j : path.support(t)) union_support.insert(j);
    const SparseModel model = SparseModel::from_dense(
        dict, path.dense_coefficients(t, dict->size()));
    indep_err += validate_model(model, test.inputs, test.metric_values(metric));
  }

  // Joint S-OMP with the same number of *distinct* basis functions as the
  // union of the four independent supports (apples-to-apples model size).
  Matrix responses(train.inputs.rows(), 4);
  for (int i = 0; i < 4; ++i)
    responses.set_col(i, train.metric_values(circuits::kAllOpAmpMetrics[i]));
  const SompResult joint = SompSolver().fit(
      g, responses, static_cast<Index>(union_support.size()));
  Real joint_err = 0;
  for (int i = 0; i < 4; ++i) {
    std::vector<ModelTerm> terms;
    for (std::size_t s = 0; s < joint.support.size(); ++s)
      terms.push_back({joint.support[s],
                       joint.coefficients[static_cast<std::size_t>(i)][s]});
    const SparseModel model(dict, std::move(terms));
    joint_err += validate_model(model, test.inputs,
                                test.metric_values(circuits::kAllOpAmpMetrics[i]));
  }

  Table table({"strategy", "distinct basis functions", "avg test error"});
  table.add_row({"4x independent OMP (lambda=30 each)",
                 std::to_string(union_support.size()),
                 format_pct(indep_err / 4)});
  table.add_row({"S-OMP shared support (same distinct budget)",
                 std::to_string(joint.support.size()),
                 format_pct(joint_err / 4)});
  std::printf("%s\n", table.render().c_str());
  std::printf("(one shared support answers 'which variations matter for this"
              " circuit'\n directly, and the selection scan is amortized "
              "across all four metrics)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("ablation_refit_cv").c_str());
    return 0;
  }
  print_header("Ablations — why OMP's design choices matter",
               "(supporting analysis; not a paper table)");
  BenchReport bench_report("ablation_refit_cv");
  ablation_refit();
  ablation_cv_folds();
  ablation_sampling();
  ablation_joint_selection();
  return 0;
}
