// Campaign-layer overhead: what the fault-tolerance machinery costs when
// nothing goes wrong, and what recovery costs when something does.
//
//   build/bench/campaign_overhead [--samples 200] [--fault-rate 0.05]
//
// Three configurations over the same OpAmp Monte Carlo set:
//   direct            — bare evaluator loop, no campaign layer (baseline);
//   campaign          — run_campaign with no faults: pure bookkeeping
//                       overhead, which must be negligible next to a DC
//                       solve;
//   campaign+faults   — run_campaign with injected faults: retries
//                       re-simulate at escalated (deeper-ladder) DC
//                       options, so a retry costs more than a nominal
//                       sample — this table quantifies how much.
#include <chrono>
#include <cstdio>
#include <span>

#include "common.hpp"
#include "core/campaign.hpp"
#include "spice/dc.hpp"
#include "stats/lhs.hpp"
#include "util/cli.hpp"
#include "util/signals.hpp"
#include "util/table.hpp"

namespace {

using namespace rsm;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rsm::bench;
  CliArgs args;
  args.add_option("samples", "200", "Monte Carlo samples K");
  args.add_option("fault-rate", "0.05", "injected fault probability");
  args.parse(argc, argv);
  if (args.help_requested()) {
    std::printf("%s", args.usage("campaign_overhead").c_str());
    return 0;
  }
  const Index num_samples = args.get_int("samples");
  const Real fault_rate = args.get_double("fault-rate");

  // Ctrl-C drains the in-flight campaign gracefully (the report destructor
  // still writes BENCH_*.json); a second signal exits immediately.
  CancellationSource cancel_source;
  install_signal_cancellation(&cancel_source);

  print_header("Campaign-layer overhead",
               "fault-free bookkeeping cost and faulted retry cost, OpAmp "
               "gain bench");

  BenchReport bench_report("campaign_overhead");
  bench_report.results().set("samples",
                             static_cast<std::int64_t>(num_samples));
  bench_report.results().set("fault_rate", static_cast<double>(fault_rate));

  circuits::OpAmpConfig config;
  config.num_variables = 38;
  const circuits::OpAmpWorkload opamp(config);
  Rng rng(11);
  const Matrix samples =
      monte_carlo_normal(num_samples, config.num_variables, rng);

  const spice::DcOptions base_dc;
  const SampleEvaluator evaluate = [&](std::span<const Real> dy,
                                       int escalation) {
    return static_cast<Real>(
        opamp.evaluate(dy, spice::escalated(base_dc, escalation)).gain_db);
  };

  Table table({"configuration", "succeeded", "retries", "quarantined",
               "total [s]", "per-sample [ms]"});

  // Baseline: the bare evaluator loop.
  const auto t0 = Clock::now();
  for (Index k = 0; k < num_samples; ++k) (void)evaluate(samples.row(k), 0);
  const double direct = seconds_since(t0);
  table.add_row({"direct", std::to_string(num_samples), "0", "0",
                 format_sig(direct, 3),
                 format_sig(1e3 * direct / static_cast<double>(num_samples),
                            3)});

  // Campaign layer, nothing failing.
  CampaignOptions clean_opt;
  clean_opt.cancel = cancel_source.token();
  const auto t1 = Clock::now();
  const CampaignResult clean = run_campaign(samples, evaluate, clean_opt);
  const double with_campaign = seconds_since(t1);
  table.add_row(
      {"campaign", std::to_string(clean.report.succeeded),
       std::to_string(clean.report.total_retries),
       std::to_string(clean.report.quarantined.size()),
       format_sig(with_campaign, 3),
       format_sig(1e3 * with_campaign / static_cast<double>(num_samples),
                  3)});

  // Campaign layer under injected faults.
  CampaignOptions faulted_opt;
  faulted_opt.cancel = cancel_source.token();
  faulted_opt.max_attempts = 3;
  faulted_opt.fault_injector =
      FaultInjector({.fault_rate = fault_rate, .persistent_fraction = 0.5,
                     .seed = 99});
  const auto t2 = Clock::now();
  const CampaignResult faulted = run_campaign(samples, evaluate, faulted_opt);
  const double with_faults = seconds_since(t2);
  table.add_row(
      {"campaign+faults", std::to_string(faulted.report.succeeded),
       std::to_string(faulted.report.total_retries),
       std::to_string(faulted.report.quarantined.size()),
       format_sig(with_faults, 3),
       format_sig(1e3 * with_faults / static_cast<double>(num_samples), 3)});

  std::printf("%s", table.render().c_str());
  std::printf("\nbookkeeping overhead: %+.1f%% over direct; faulted run: "
              "%+.1f%% (retries rerun at escalated DC options)\n",
              100.0 * (with_campaign / direct - 1.0),
              100.0 * (with_faults / direct - 1.0));
  std::printf("\n%s\n", faulted.report.summary().c_str());

  bench_report.results().set("direct_seconds", direct);
  bench_report.results().set("campaign_seconds", with_campaign);
  bench_report.results().set("campaign_faulted_seconds", with_faults);
  bench_report.results().set("bookkeeping_overhead_fraction",
                             with_campaign / direct - 1.0);
  bench_report.results().set("clean_report", clean.report.to_json());
  bench_report.results().set("faulted_report", faulted.report.to_json());
  return signal_exit_status();
}
