// Solver-kernel microbenchmarks (google-benchmark).
//
//   build/bench/kernel_microbench [--benchmark_filter=...]
//
// Measures the numerical kernels whose costs appear in the paper's "fitting
// cost" rows: the three path solvers vs problem size, the incremental-QR
// trick vs naive per-step refactorization, design-matrix evaluation, and the
// underlying GEMM/correlation primitives.
#include <benchmark/benchmark.h>

#include "basis/dictionary.hpp"
#include "common.hpp"
#include "core/lar.hpp"
#include "core/omp.hpp"
#include "core/star.hpp"
#include "linalg/blas.hpp"
#include "linalg/incremental_qr.hpp"
#include "linalg/qr.hpp"
#include "stats/lhs.hpp"
#include "stats/rng.hpp"

namespace {

using namespace rsm;

struct Problem {
  Matrix g;
  std::vector<Real> f;
};

Problem make_problem(Index k, Index m, Index p) {
  Rng rng(static_cast<std::uint64_t>(k * 7919 + m));
  Problem prob;
  prob.g = monte_carlo_normal(k, m, rng);
  prob.f.assign(static_cast<std::size_t>(k), Real{0});
  for (Index i = 0; i < p; ++i) {
    const Index j = rng.uniform_index(m);
    const Real c = rng.normal();
    for (Index r = 0; r < k; ++r)
      prob.f[static_cast<std::size_t>(r)] += c * prob.g(r, j);
  }
  for (Real& v : prob.f) v += 0.01 * rng.normal();
  return prob;
}

void BM_OmpFitPath(benchmark::State& state) {
  const Index m = state.range(0);
  const Problem prob = make_problem(500, m, 20);
  const OmpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.fit_path(prob.g, prob.f, 40));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_OmpFitPath)->Arg(500)->Arg(2000)->Arg(8000)->Complexity();

void BM_LarFitPath(benchmark::State& state) {
  const Index m = state.range(0);
  const Problem prob = make_problem(500, m, 20);
  const LarSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.fit_path(prob.g, prob.f, 40));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_LarFitPath)->Arg(500)->Arg(2000)->Arg(8000)->Complexity();

void BM_StarFitPath(benchmark::State& state) {
  const Index m = state.range(0);
  const Problem prob = make_problem(500, m, 20);
  const StarSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.fit_path(prob.g, prob.f, 40));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_StarFitPath)->Arg(500)->Arg(2000)->Arg(8000)->Complexity();

// The Step-6 implementation choice: incremental QR appends vs a fresh
// Householder factorization at every step (what a naive Algorithm 1 does).
void BM_IncrementalQrSteps(benchmark::State& state) {
  const Index k = 800, p = state.range(0);
  Rng rng(3);
  const Matrix a = monte_carlo_normal(k, p, rng);
  const std::vector<Real> b = rng.normal_vector(k);
  for (auto _ : state) {
    IncrementalQr qr(k, p);
    for (Index j = 0; j < p; ++j) {
      benchmark::DoNotOptimize(qr.append_column(a.col(j)));
      benchmark::DoNotOptimize(qr.solve(b));
    }
  }
}
BENCHMARK(BM_IncrementalQrSteps)->Arg(20)->Arg(60)->Arg(120);

void BM_NaiveRefactorSteps(benchmark::State& state) {
  const Index k = 800, p = state.range(0);
  Rng rng(3);
  const Matrix a = monte_carlo_normal(k, p, rng);
  const std::vector<Real> b = rng.normal_vector(k);
  for (auto _ : state) {
    for (Index j = 1; j <= p; ++j) {
      Matrix prefix(k, j);
      for (Index r = 0; r < k; ++r)
        for (Index c = 0; c < j; ++c) prefix(r, c) = a(r, c);
      benchmark::DoNotOptimize(QrFactorization(prefix).solve(b));
    }
  }
}
BENCHMARK(BM_NaiveRefactorSteps)->Arg(20)->Arg(60)->Arg(120);

void BM_DesignMatrixQuadratic(benchmark::State& state) {
  const Index n = state.range(0);
  const BasisDictionary dict = BasisDictionary::quadratic(n);
  Rng rng(4);
  const Matrix samples = monte_carlo_normal(200, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.design_matrix(samples));
  }
  state.counters["M"] = static_cast<double>(dict.size());
}
BENCHMARK(BM_DesignMatrixQuadratic)->Arg(20)->Arg(50)->Arg(100);

void BM_CorrelationScan(benchmark::State& state) {
  // One OMP step's dominant kernel: G' * residual.
  const Index k = 1000, m = state.range(0);
  Rng rng(5);
  const Matrix g = monte_carlo_normal(k, m, rng);
  const std::vector<Real> r = rng.normal_vector(k);
  std::vector<Real> out(static_cast<std::size_t>(m));
  for (auto _ : state) {
    gemv_transposed(g, r, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * k *
                          m * static_cast<std::int64_t>(sizeof(Real)));
}
BENCHMARK(BM_CorrelationScan)->Arg(1000)->Arg(5000)->Arg(21311);

void BM_StreamingOmp(benchmark::State& state) {
  // OMP against a lazily evaluated quadratic dictionary (no materialized
  // design matrix): the memory-for-time trade used when M ~ 10^6.
  const Index n = state.range(0);
  const auto dict = std::make_shared<BasisDictionary>(
      BasisDictionary::quadratic(n));
  Rng rng(7);
  const Index k = 150;
  const Matrix samples = monte_carlo_normal(k, n, rng);
  std::vector<Real> f(static_cast<std::size_t>(k));
  for (Index r = 0; r < k; ++r)
    f[static_cast<std::size_t>(r)] =
        2.0 * dict->evaluate(1, samples.row(r)) -
        dict->evaluate(dict->size() / 2, samples.row(r));
  const OmpSolver solver;
  const DictionarySource source(dict, samples);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.fit_path(source, f, 5));
  }
  state.counters["M"] = static_cast<double>(dict->size());
}
BENCHMARK(BM_StreamingOmp)->Arg(50)->Arg(150)->Arg(400);

void BM_Gemm(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(6);
  const Matrix a = monte_carlo_normal(n, n, rng);
  const Matrix b = monte_carlo_normal(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Arg(512);

}  // namespace

// Expanded BENCHMARK_MAIN() with a BenchReport wrapped around the run, so
// the span tree and solver telemetry the fixtures generate land in
// BENCH_kernel_microbench.json like every other bench.
int main(int argc, char** argv) {
  rsm::bench::BenchReport bench_report("kernel_microbench");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  bench_report.results().set("benchmarks_run",
                             static_cast<std::int64_t>(ran));
  benchmark::Shutdown();
  return 0;
}
